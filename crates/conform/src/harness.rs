//! The N-replica conformance runner.
//!
//! For one [`TargetSpec`] the harness renders the target's canonical
//! artifact once per declared replica (each on a dedicated pool of the
//! declared size, so `threads = [1, 2, 4]` *is* the `SS_THREADS` matrix),
//! byte-compares every replica against the first, checks the manifest's
//! structural expectations against the canonical output, and compares (or
//! blesses) the committed golden fixture.  Any mismatch is localized by
//! [`crate::divergence`].
//!
//! The renderer is an injected closure so the same machinery that runs the
//! builtin targets ([`crate::targets`]) also runs synthetic targets in
//! tests — including deliberately nondeterministic ones that prove the
//! harness catches what it claims to catch.

use crate::divergence::{first_divergence, Divergence};
use crate::manifest::TargetSpec;
use ss_sim::pool;
use ss_verify::CorpusStats;
use std::path::{Path, PathBuf};

/// One replica's execution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaSpec {
    /// Pool size the replica runs under (the `SS_THREADS` axis).
    pub threads: usize,
    /// Harness lanes for targets that take `--jobs` (defaults to `threads`).
    pub jobs: usize,
}

impl ReplicaSpec {
    /// Display label used in divergence reports (`threads=4` or
    /// `threads=4,jobs=2` when the two differ).
    pub fn label(&self) -> String {
        if self.jobs == self.threads {
            format!("threads={}", self.threads)
        } else {
            format!("threads={},jobs={}", self.threads, self.jobs)
        }
    }
}

/// The replica matrix a target declares.
pub fn replica_specs(spec: &TargetSpec) -> Vec<ReplicaSpec> {
    spec.threads
        .iter()
        .enumerate()
        .map(|(i, &threads)| ReplicaSpec {
            threads,
            jobs: spec.jobs.as_ref().map_or(threads, |j| j[i]),
        })
        .collect()
}

/// Whether the run compares against or rewrites the golden fixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Compare the canonical artifact against the committed fixture.
    Check,
    /// Rewrite the fixture from the canonical artifact (only when the
    /// replicas agree and expectations hold — nondeterminism and structural
    /// regressions must never be blessed).
    Bless,
}

/// Outcome of the golden-fixture comparison.
#[derive(Debug, Clone)]
pub enum FixtureStatus {
    /// Committed fixture is byte-identical to the canonical artifact.
    Match,
    /// Committed fixture differs; the divergence is localized.
    Mismatch(Box<Divergence>),
    /// No fixture on disk yet (run `conform --bless`).
    Missing(PathBuf),
    /// Bless mode wrote (or confirmed) the fixture; `changed` says whether
    /// the bytes on disk actually changed.
    Blessed {
        /// Path written.
        path: PathBuf,
        /// Whether the write changed the committed bytes.
        changed: bool,
    },
    /// Fixture handling was skipped because the replicas already failed.
    Skipped,
    /// The fixture file could not be read or written.
    IoError(String),
}

/// Everything the harness learned about one target.
#[derive(Debug)]
pub struct TargetOutcome {
    /// The target key (from the manifest).
    pub key: String,
    /// Labels of the replicas that ran, in order.
    pub replica_labels: Vec<String>,
    /// Canonical artifact size in bytes (replica 0), when it rendered.
    pub artifact_bytes: Option<usize>,
    /// Render errors (panics, failed oracle checks, unknown experiments).
    pub errors: Vec<String>,
    /// Cross-replica divergences (replica 0 vs each later replica).
    pub divergences: Vec<Divergence>,
    /// Violated manifest expectations.
    pub expectation_failures: Vec<String>,
    /// Golden-fixture status.
    pub fixture: FixtureStatus,
}

impl TargetOutcome {
    /// Whether the target conforms (replicas agree, expectations hold,
    /// fixture matches or was just blessed).
    pub fn pass(&self) -> bool {
        self.errors.is_empty()
            && self.divergences.is_empty()
            && self.expectation_failures.is_empty()
            && matches!(
                self.fixture,
                FixtureStatus::Match | FixtureStatus::Blessed { .. }
            )
    }

    /// Human-readable report block (one line when passing).
    pub fn report(&self) -> String {
        let mut out = String::new();
        let replicas = self.replica_labels.join(" ");
        if self.pass() {
            let bytes = self.artifact_bytes.unwrap_or(0);
            match &self.fixture {
                FixtureStatus::Blessed { path, changed } => out.push_str(&format!(
                    "conform: PASS {} [{replicas}] {bytes} bytes — {} {}\n",
                    self.key,
                    if *changed { "blessed" } else { "unchanged" },
                    path.display()
                )),
                _ => out.push_str(&format!(
                    "conform: PASS {} [{replicas}] {bytes} bytes, fixture matches\n",
                    self.key
                )),
            }
            return out;
        }
        out.push_str(&format!("conform: FAIL {} [{replicas}]\n", self.key));
        for e in &self.errors {
            out.push_str(&format!("  error: {e}\n"));
        }
        for d in &self.divergences {
            for line in d.report().lines() {
                out.push_str(&format!("  {line}\n"));
            }
        }
        for f in &self.expectation_failures {
            out.push_str(&format!("  expectation: {f}\n"));
        }
        match &self.fixture {
            FixtureStatus::Mismatch(d) => {
                out.push_str("  golden fixture diverges from the freshly rendered artifact:\n");
                for line in d.report().lines() {
                    out.push_str(&format!("    {line}\n"));
                }
                out.push_str(
                    "  (if the change is intentional, re-bless with `conform --bless` and \
                     commit the fixture diff)\n",
                );
            }
            FixtureStatus::Missing(path) => out.push_str(&format!(
                "  missing golden fixture {} — generate it with `conform --bless`\n",
                path.display()
            )),
            FixtureStatus::IoError(e) => out.push_str(&format!("  fixture io error: {e}\n")),
            FixtureStatus::Skipped => {
                out.push_str("  fixture not compared (replicas already failed)\n")
            }
            FixtureStatus::Match | FixtureStatus::Blessed { .. } => {}
        }
        out
    }
}

/// Check the manifest's structural expectations against the canonical
/// artifact text.
fn check_expectations(spec: &TargetSpec, artifact: &str) -> Vec<String> {
    let mut failures = Vec::new();
    for needle in &spec.expect_contains {
        if !artifact.contains(needle.as_str()) {
            failures.push(format!("artifact does not contain {needle:?}"));
        }
    }
    for pair in &spec.expect_pairs {
        if !artifact.contains(&format!("PASS {pair}")) {
            failures.push(format!(
                "oracle pair {pair:?} has no PASS line — the corpus shrank or the pair regressed"
            ));
        }
    }
    let trailer = CorpusStats::parse(artifact);
    let needs_trailer = !spec.expect_pairs.is_empty()
        || spec.expect_scenarios.is_some()
        || spec.expect_seed.is_some();
    match trailer {
        None if needs_trailer => failures.push(
            "artifact carries no machine-readable corpus trailer (expected `corpus-trailer: ...`)"
                .to_string(),
        ),
        None => {}
        Some(stats) => {
            if !spec.expect_pairs.is_empty() && stats.pairs != spec.expect_pairs.len() {
                failures.push(format!(
                    "trailer declares {} oracle pairs, manifest expects {}",
                    stats.pairs,
                    spec.expect_pairs.len()
                ));
            }
            if let Some(expected) = spec.expect_scenarios {
                if stats.scenarios != expected {
                    failures.push(format!(
                        "trailer declares {} scenarios, manifest expects {expected} — grow the \
                         corpus append-only and update conform.toml deliberately",
                        stats.scenarios
                    ));
                }
            }
            if let Some(expected) = spec.expect_seed {
                if stats.seed != expected {
                    failures.push(format!(
                        "trailer declares seed {}, manifest expects {expected}",
                        stats.seed
                    ));
                }
            }
        }
    }
    failures
}

/// Run one target: render every replica, compare, check expectations, and
/// check or bless the golden fixture.  `render` receives each replica's
/// spec and must produce the canonical artifact text; it runs on a
/// dedicated pool of `replica.threads` threads installed by the harness.
pub fn run_target(
    spec: &TargetSpec,
    render: &dyn Fn(&ReplicaSpec) -> Result<String, String>,
    root: &Path,
    mode: RunMode,
) -> TargetOutcome {
    let replicas = replica_specs(spec);
    let mut errors = Vec::new();
    let mut outputs: Vec<Option<String>> = Vec::new();
    for r in &replicas {
        match pool::with_threads(r.threads, || render(r)) {
            Ok(text) => outputs.push(Some(text)),
            Err(e) => {
                errors.push(format!("replica {}: {e}", r.label()));
                outputs.push(None);
            }
        }
    }
    let mut divergences = Vec::new();
    if let Some(canonical) = outputs[0].as_deref() {
        for (i, output) in outputs.iter().enumerate().skip(1) {
            if let Some(text) = output.as_deref() {
                if let Some(d) = first_divergence(
                    &replicas[0].label(),
                    canonical.as_bytes(),
                    &replicas[i].label(),
                    text.as_bytes(),
                ) {
                    divergences.push(d);
                }
            }
        }
    }
    let expectation_failures = match outputs[0].as_deref() {
        Some(canonical) => check_expectations(spec, canonical),
        None => Vec::new(),
    };

    let healthy = errors.is_empty() && divergences.is_empty() && expectation_failures.is_empty();
    let fixture_path = root.join(&spec.fixture);
    let fixture = match (outputs[0].as_deref(), mode) {
        (None, _) => FixtureStatus::Skipped,
        // A diverging/failing target is never blessed, and comparing its
        // artifact against the fixture would only bury the primary signal.
        (Some(_), _) if !healthy => FixtureStatus::Skipped,
        (Some(canonical), RunMode::Bless) => {
            let previous = std::fs::read(&fixture_path).ok();
            let changed = previous.as_deref() != Some(canonical.as_bytes());
            let write = || -> std::io::Result<()> {
                if let Some(parent) = fixture_path.parent() {
                    std::fs::create_dir_all(parent)?;
                }
                std::fs::write(&fixture_path, canonical)
            };
            if changed {
                match write() {
                    Ok(()) => FixtureStatus::Blessed {
                        path: fixture_path,
                        changed: true,
                    },
                    Err(e) => FixtureStatus::IoError(format!("{}: {e}", spec.fixture)),
                }
            } else {
                FixtureStatus::Blessed {
                    path: fixture_path,
                    changed: false,
                }
            }
        }
        (Some(canonical), RunMode::Check) => match std::fs::read(&fixture_path) {
            Ok(committed) => match first_divergence(
                "committed-fixture",
                &committed,
                &replicas[0].label(),
                canonical.as_bytes(),
            ) {
                None => FixtureStatus::Match,
                Some(d) => FixtureStatus::Mismatch(Box::new(d)),
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                FixtureStatus::Missing(fixture_path)
            }
            Err(e) => FixtureStatus::IoError(format!("{}: {e}", spec.fixture)),
        },
    };

    TargetOutcome {
        key: spec.key.clone(),
        replica_labels: replicas.iter().map(ReplicaSpec::label).collect(),
        artifact_bytes: outputs[0].as_ref().map(String::len),
        errors,
        divergences,
        expectation_failures,
        fixture,
    }
}

//! Divergence localization acceptance tests.
//!
//! Synthetic replica outputs, each broken in one of the classic ways
//! determinism fails in practice — float-formatting drift, hash-map
//! ordering, an injected timestamp, truncation — must each be localized to
//! the right byte offset, with hex context from both sides and the matching
//! root-cause hint.  These are the tests that fail without the subsystem:
//! a plain byte-equality check would say "differs" with none of this.

use ss_conform::{first_divergence, RootCause};

/// Report lines shared by the synthetic artifacts.
const BASE: &str = "alpha mean=0.5 jobs=400\nbeta mean=1.25 jobs=200\ngamma mean=2 jobs=100\n";

#[test]
fn float_formatting_drift_is_localized_and_hinted() {
    // Same value, different rendering: `0.5` vs `0.50`.
    let drifted = BASE.replace("mean=0.5 ", "mean=0.50 ");
    let d = first_divergence(
        "threads=1",
        BASE.as_bytes(),
        "threads=4",
        drifted.as_bytes(),
    )
    .expect("artifacts differ");
    // "alpha mean=0.5" — both sides agree through "mean=0.5"; the first
    // differing byte is the ' ' vs '0' right after it.
    let expected_offset = BASE.find("0.5 ").unwrap() + "0.5".len();
    assert_eq!(d.offset, expected_offset);
    assert_eq!(d.cause, RootCause::FloatFormatting);
    assert!(
        d.cause.hint().contains("float formatting"),
        "{}",
        d.cause.hint()
    );
    // The hint cross-links the ss-lint rule that catches this statically.
    assert!(
        d.cause.hint().contains("ss-lint L005"),
        "{}",
        d.cause.hint()
    );
    // Hex context: left starts at the ' ' (0x20), right at the extra '0' (0x30).
    assert!(d.left_context.starts_with("20 "), "{}", d.left_context);
    assert!(d.right_context.starts_with("30 "), "{}", d.right_context);
    assert!(d.left_context.ends_with('|'), "{}", d.left_context);
}

#[test]
fn map_ordering_shuffle_is_hinted() {
    // Same multiset of lines, shuffled — the HashMap-iteration signature.
    let shuffled = "beta mean=1.25 jobs=200\nalpha mean=0.5 jobs=400\ngamma mean=2 jobs=100\n";
    let d = first_divergence(
        "threads=1",
        BASE.as_bytes(),
        "threads=2",
        shuffled.as_bytes(),
    )
    .expect("artifacts differ");
    assert_eq!(d.offset, 0, "shuffle differs from the very first byte");
    assert_eq!(d.cause, RootCause::MapOrdering);
    assert!(d.cause.hint().contains("HashMap"), "{}", d.cause.hint());
    assert!(
        d.cause.hint().contains("ss-lint L001"),
        "{}",
        d.cause.hint()
    );
    // ASCII gloss shows the two different leading lines.
    assert!(
        d.left_context.contains("|alpha mean=0.5 j|"),
        "{}",
        d.left_context
    );
    assert!(
        d.right_context.contains("|beta mean=1.25 j|"),
        "{}",
        d.right_context
    );
}

#[test]
fn injected_timestamp_is_hinted() {
    let left = format!("{BASE}elapsed 1700000001 seconds\n");
    let right = format!("{BASE}elapsed 1700000923 seconds\n");
    let d = first_divergence("threads=1", left.as_bytes(), "threads=4", right.as_bytes())
        .expect("artifacts differ");
    // Divergence sits inside the epoch-seconds token.
    let expected_offset = left
        .char_indices()
        .zip(right.chars())
        .find(|((_, a), b)| a != b)
        .map(|((i, _), _)| i)
        .unwrap();
    assert_eq!(d.offset, expected_offset);
    assert_eq!(d.cause, RootCause::Timestamp);
    assert!(d.cause.hint().contains("wall-clock"), "{}", d.cause.hint());
    assert!(
        d.cause.hint().contains("ss-lint L002"),
        "{}",
        d.cause.hint()
    );
}

#[test]
fn harness_style_timing_lines_are_timestamps_too() {
    let left = format!("[E3 wall 1.20s]\n{BASE}");
    let right = format!("[E3 wall 3.41s]\n{BASE}");
    let d = first_divergence("threads=1", left.as_bytes(), "threads=4", right.as_bytes())
        .expect("artifacts differ");
    assert_eq!(d.cause, RootCause::Timestamp);
}

#[test]
fn truncation_is_localized_to_the_cut() {
    let truncated = &BASE[..BASE.len() - 20];
    let d = first_divergence(
        "threads=1",
        BASE.as_bytes(),
        "threads=2",
        truncated.as_bytes(),
    )
    .expect("artifacts differ");
    assert_eq!(d.offset, BASE.len() - 20, "offset is the shorter length");
    assert_eq!(
        d.cause,
        RootCause::Truncation {
            shorter: BASE.len() - 20,
            longer: BASE.len()
        }
    );
    assert!(
        d.cause.hint().contains("strict prefix"),
        "{}",
        d.cause.hint()
    );
    // The truncated side has no bytes at the offset.
    assert_eq!(
        d.right_context,
        format!("<end of artifact at {} bytes>", BASE.len() - 20)
    );
    // The longer side shows what the truncated replica lost.
    assert!(d.left_context.contains('|'), "{}", d.left_context);
}

#[test]
fn genuinely_different_values_get_no_false_hint() {
    let left = BASE.replace("mean=1.25", "mean=1.25001");
    let d = first_divergence("threads=1", left.as_bytes(), "threads=4", BASE.as_bytes())
        .expect("artifacts differ");
    assert_eq!(
        d.cause,
        RootCause::Unknown {
            left_len: left.len(),
            right_len: BASE.len()
        }
    );
    assert!(
        d.cause.hint().contains("unseeded RNG"),
        "{}",
        d.cause.hint()
    );
}

#[test]
fn divergence_report_carries_offset_contexts_and_hint() {
    let drifted = BASE.replace("mean=0.5 ", "mean=0.50 ");
    let d = first_divergence(
        "threads=1",
        BASE.as_bytes(),
        "threads=4",
        drifted.as_bytes(),
    )
    .unwrap();
    let report = d.report();
    assert!(
        report.contains(&format!("byte offset {} (0x{:x})", d.offset, d.offset)),
        "{report}"
    );
    assert!(report.contains("threads=1"), "{report}");
    assert!(report.contains("threads=4"), "{report}");
    assert!(report.contains("hint: float formatting"), "{report}");
}

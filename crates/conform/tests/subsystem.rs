//! Subsystem-level acceptance tests: the checked-in manifest, the
//! fixture-compare/bless lifecycle, and the end-to-end guarantee that an
//! injected nondeterminism is caught and localized through the full
//! [`run_target`] path.

use ss_conform::harness::{run_target, FixtureStatus, RunMode};
use ss_conform::{load_manifest, replica_specs, RootCause, TargetKind, TargetSpec};
use ss_verify::OraclePair;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn repo_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// A scratch root that cleans itself up (fixture round-trip tests write
/// real files; they must not touch the repo's committed fixtures).
struct ScratchRoot(PathBuf);

impl ScratchRoot {
    fn new(tag: &str) -> ScratchRoot {
        let dir = std::env::temp_dir().join(format!("ss-conform-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        ScratchRoot(dir)
    }
}

impl Drop for ScratchRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn synthetic_spec(key: &str) -> TargetSpec {
    TargetSpec {
        key: key.to_string(),
        // The kind is irrelevant when the renderer is injected; Sweeps is
        // the one with no extra required fields.
        kind: TargetKind::Sweeps,
        description: "synthetic test target".to_string(),
        threads: vec![1, 2, 4],
        jobs: None,
        fixture: format!("fixtures/conform/{key}.txt"),
        experiments: Vec::new(),
        replications: None,
        expect_pairs: Vec::new(),
        expect_scenarios: None,
        expect_seed: None,
        expect_contains: Vec::new(),
    }
}

// ---------------------------------------------------------------- manifest

#[test]
fn committed_manifest_parses_and_matches_the_oracle_corpus() {
    let manifest = load_manifest(&repo_root()).expect("conform.toml parses");
    assert_eq!(manifest.targets.len(), 5, "five conformance targets");

    let verify = manifest
        .targets
        .iter()
        .find(|t| t.kind == TargetKind::Verify)
        .expect("a verify target");
    // The manifest's pair list is exactly the oracle pairs the corpus
    // implements — a pair added to the code without a manifest edit (or
    // vice versa) fails here before CI even runs the corpus.
    let mut declared: Vec<&str> = verify.expect_pairs.iter().map(String::as_str).collect();
    let mut implemented: Vec<&str> = OraclePair::ALL.iter().map(|p| p.key()).collect();
    declared.sort_unstable();
    implemented.sort_unstable();
    assert_eq!(declared, implemented);
    assert_eq!(verify.expect_seed, Some(ss_verify::DEFAULT_SEED));

    for t in &manifest.targets {
        // Replica matrices span the documented SS_THREADS axis.
        assert!(t.threads.contains(&1), "{}: threads include 1", t.key);
        assert!(t.threads.len() >= 2, "{}: at least two replicas", t.key);
        // Every declared fixture is committed.
        assert!(
            repo_root().join(&t.fixture).is_file(),
            "{}: fixture {} is committed (run `conform --bless`)",
            t.key,
            t.fixture
        );
    }
}

// ------------------------------------------------- injected nondeterminism

#[test]
fn injected_timestamp_nondeterminism_is_caught_and_localized() {
    let spec = synthetic_spec("injected-timestamp");
    // Deterministic stand-in for a wall clock: each replica renders a
    // different "epoch" value, exactly what a real clock leak produces.
    let calls = AtomicUsize::new(0);
    let render = move |_: &ss_conform::ReplicaSpec| {
        let fake_epoch = 1_700_000_000 + calls.fetch_add(1, Ordering::SeqCst);
        Ok(format!(
            "stable line A\nelapsed {fake_epoch} seconds\nstable line B\n"
        ))
    };
    let scratch = ScratchRoot::new("injected");
    let outcome = run_target(&spec, &render, &scratch.0, RunMode::Check);

    assert!(!outcome.pass(), "nondeterminism must fail the target");
    assert_eq!(
        outcome.divergences.len(),
        2,
        "replica 0 vs replicas 1 and 2"
    );
    for d in &outcome.divergences {
        // The replicas differ in the last digits of the epoch token.
        let base = "stable line A\nelapsed 170000000";
        assert!(
            d.offset >= base.len() - 2 && d.offset <= base.len() + 1,
            "offset {} localizes the epoch digits",
            d.offset
        );
        assert_eq!(d.cause, RootCause::Timestamp, "{:?}", d.cause);
        assert!(d.left_context.contains('|'), "hex context rendered");
    }
    assert_eq!(
        outcome.replica_labels,
        ["threads=1", "threads=2", "threads=4"]
    );
    // The report is what CI prints: it must carry the hint.
    assert!(
        outcome.report().contains("timestamp leakage"),
        "{}",
        outcome.report()
    );
    // A broken target is never compared against (or blessed into) fixtures.
    assert!(matches!(outcome.fixture, FixtureStatus::Skipped));
}

#[test]
fn bless_refuses_to_bless_diverging_replicas() {
    let spec = synthetic_spec("refuse-bless");
    let calls = AtomicUsize::new(0);
    let render = move |_: &ss_conform::ReplicaSpec| {
        Ok(format!("value {}\n", calls.fetch_add(1, Ordering::SeqCst)))
    };
    let scratch = ScratchRoot::new("refuse");
    let outcome = run_target(&spec, &render, &scratch.0, RunMode::Bless);
    assert!(!outcome.pass());
    assert!(matches!(outcome.fixture, FixtureStatus::Skipped));
    assert!(
        !scratch.0.join(&spec.fixture).exists(),
        "no fixture written for a diverging target"
    );
}

// ------------------------------------------------------- fixture lifecycle

fn deterministic_render(_: &ss_conform::ReplicaSpec) -> Result<String, String> {
    Ok("artifact line 1\nartifact line 2\n".to_string())
}

#[test]
fn fixture_missing_then_bless_then_match_round_trip() {
    let spec = synthetic_spec("round-trip");
    let scratch = ScratchRoot::new("roundtrip");
    let root: &Path = &scratch.0;

    // 1. No fixture yet: check mode fails with Missing.
    let outcome = run_target(&spec, &deterministic_render, root, RunMode::Check);
    assert!(!outcome.pass());
    assert!(matches!(outcome.fixture, FixtureStatus::Missing(_)));
    assert!(outcome.report().contains("--bless"), "{}", outcome.report());

    // 2. Bless writes it.
    let outcome = run_target(&spec, &deterministic_render, root, RunMode::Bless);
    assert!(outcome.pass());
    assert!(matches!(
        outcome.fixture,
        FixtureStatus::Blessed { changed: true, .. }
    ));

    // 3. Check now passes; re-bless is a no-op (the CI bless-drift gate).
    let outcome = run_target(&spec, &deterministic_render, root, RunMode::Check);
    assert!(outcome.pass(), "{}", outcome.report());
    assert!(matches!(outcome.fixture, FixtureStatus::Match));
    let outcome = run_target(&spec, &deterministic_render, root, RunMode::Bless);
    assert!(matches!(
        outcome.fixture,
        FixtureStatus::Blessed { changed: false, .. }
    ));
}

#[test]
fn stale_fixture_is_a_localized_mismatch() {
    let spec = synthetic_spec("stale");
    let scratch = ScratchRoot::new("stale");
    let path = scratch.0.join(&spec.fixture);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, "artifact line 1\nartifact line 2 OLD\n").unwrap();

    let outcome = run_target(&spec, &deterministic_render, &scratch.0, RunMode::Check);
    assert!(!outcome.pass());
    let FixtureStatus::Mismatch(d) = &outcome.fixture else {
        panic!("expected Mismatch, got {:?}", outcome.fixture);
    };
    assert_eq!(d.left_label, "committed-fixture");
    assert_eq!(
        d.offset,
        "artifact line 1\nartifact line 2".len(),
        "divergence at the edit"
    );
    assert!(
        outcome.report().contains("re-bless"),
        "{}",
        outcome.report()
    );
}

// ------------------------------------------------------------ replica axes

#[test]
fn replica_specs_expand_threads_and_jobs() {
    let mut spec = synthetic_spec("axes");
    spec.jobs = Some(vec![1, 2, 8]);
    let replicas = replica_specs(&spec);
    assert_eq!(replicas.len(), 3);
    assert_eq!(replicas[2].threads, 4);
    assert_eq!(replicas[2].jobs, 8);
    assert_eq!(replicas[2].label(), "threads=4,jobs=8");
    // jobs == threads collapses to the short label.
    assert_eq!(replicas[0].label(), "threads=1");
}

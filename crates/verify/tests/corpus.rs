//! Tier-1 integration test: the fast corpus slice must pass every oracle
//! check, cover the required diversity, and be bit-identical across thread
//! counts (the same contract CI enforces via `verify --check`).

use ss_sim::pool;
use ss_verify::corpus::generate_corpus;
use ss_verify::run::{format_report_line, render_check_report, run_corpus, summarize};
use ss_verify::scenario::Budget;
use ss_verify::{CorpusStats, OraclePair, DEFAULT_SEED};
use std::collections::HashSet;

/// The committed corpus shape: these numbers are append-only (pairs and
/// scenarios may only grow) and are the same values the `verify --check`
/// trailer declares and the conformance manifest (`conform.toml`) expects —
/// one source of truth instead of per-consumer `PASS`-line scraping.
#[test]
fn corpus_stats_pin_the_committed_shape() {
    let stats = generate_corpus(DEFAULT_SEED).stats();
    assert_eq!(
        stats,
        CorpusStats {
            pairs: 12,
            scenarios: 66,
            seed: DEFAULT_SEED,
        },
        "corpus shape changed; grow it append-only and re-bless conform.toml \
         expectations + fixtures deliberately"
    );
    assert_eq!(stats.pairs, OraclePair::ALL.len());
}

#[test]
fn check_report_carries_a_parseable_trailer() {
    // The trailer is what ss-conform and CI read; it must round-trip out of
    // the rendered report and agree with the corpus it came from.  The LP
    // pairs are exact (no Monte-Carlo replications), so restricting to them
    // keeps this a rendering test rather than a third full corpus run.
    let mut corpus = generate_corpus(DEFAULT_SEED);
    corpus.scenarios.retain(|s| {
        matches!(
            s.spec.pair(),
            OraclePair::LpPrimalVsDual | OraclePair::AchievableLpVsCmu
        )
    });
    let reports = run_corpus(&corpus, &Budget::check());
    let report = render_check_report(&corpus, &reports);
    assert_eq!(CorpusStats::parse(&report), Some(corpus.stats()));
    // The summary line keeps its historical shape (humans grep for it too).
    assert!(report.contains(&format!(
        "verify: {}/{} oracle checks passed (seed {})",
        corpus.len(),
        corpus.len(),
        DEFAULT_SEED
    )));
}

#[test]
fn check_corpus_passes_and_is_thread_count_invariant() {
    let corpus = generate_corpus(DEFAULT_SEED);
    let stats = corpus.stats();
    assert!(
        stats.scenarios >= 60,
        "corpus has only {} scenarios",
        stats.scenarios
    );
    assert_eq!(
        stats.pairs,
        OraclePair::ALL.len(),
        "corpus covers only {} oracle pairs",
        stats.pairs
    );

    let budget = Budget::check();
    let serial = pool::with_threads(1, || run_corpus(&corpus, &budget));
    let parallel = pool::with_threads(4, || run_corpus(&corpus, &budget));

    // Every oracle check passes on the fast budget.
    let (passed, total) = summarize(&serial);
    let failures: Vec<String> = serial
        .iter()
        .filter(|r| !r.verdict.pass)
        .map(format_report_line)
        .collect();
    assert_eq!(
        passed,
        total,
        "failed oracle checks:\n{}",
        failures.join("\n")
    );

    // Bit-identical reports for any thread count: compare the raw bits of
    // every numeric field, not formatted strings, so -0.0 vs 0.0 or a
    // last-ulp drift cannot hide.
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.label, b.label);
        assert_eq!(a.verdict.pass, b.verdict.pass);
        assert_eq!(
            a.verdict.simulated.to_bits(),
            b.verdict.simulated.to_bits(),
            "scenario {} diverged across thread counts",
            a.label
        );
        assert_eq!(a.verdict.exact.to_bits(), b.verdict.exact.to_bits());
        assert_eq!(
            a.verdict.ci_half_width.to_bits(),
            b.verdict.ci_half_width.to_bits()
        );
    }
}

#[test]
fn every_oracle_pair_appears_in_the_corpus() {
    let corpus = generate_corpus(DEFAULT_SEED);
    let pairs: HashSet<OraclePair> = corpus.scenarios.iter().map(|s| s.spec.pair()).collect();
    for p in OraclePair::ALL {
        assert!(pairs.contains(&p), "corpus misses oracle pair {p}");
    }
}

#[test]
fn the_simulator_pairs_added_in_pr5_are_each_multi_scenario() {
    // Klimov, Whittle and SEPT/LEPT each need scenarios on both sides of
    // their internal diversity axes (feedback/no-feedback, m=1 vs m=2,
    // flowtime vs makespan), so a single-scenario block would be a
    // coverage regression.
    let corpus = generate_corpus(DEFAULT_SEED);
    for pair in [
        OraclePair::KlimovVsExact,
        OraclePair::WhittleVsDp,
        OraclePair::SeptLeptVsDp,
    ] {
        let count = corpus
            .scenarios
            .iter()
            .filter(|s| s.spec.pair() == pair)
            .count();
        assert!(count >= 4, "pair {pair} has only {count} scenarios");
    }
}

#[test]
fn klimov_block_covers_feedback_and_feedback_free_networks() {
    let corpus = generate_corpus(DEFAULT_SEED);
    let labels: Vec<&str> = corpus
        .scenarios
        .iter()
        .filter(|s| s.spec.pair() == OraclePair::KlimovVsExact)
        .map(|s| s.label.as_str())
        .collect();
    assert!(labels.iter().any(|l| l.ends_with("no-feedback")));
    assert!(labels.iter().any(|l| l.ends_with(" feedback")));
}

#[test]
fn growing_the_corpus_did_not_perturb_the_pre_existing_scenarios() {
    // Scenario parameters are drawn from the generation substream keyed by
    // the scenario id, so appending the PR-5 blocks must leave the first
    // 42 scenarios' labels (families, loads, orders) exactly as they were.
    let corpus = generate_corpus(DEFAULT_SEED);
    assert_eq!(corpus.scenarios[0].label, "mg1-fifo k=1 rho=0.30 Exp");
    assert_eq!(
        corpus.scenarios[41].label,
        "achievable-lp k=4 rho=0.75 Erlang2+Erlang4+H2s2+H2s4"
    );
    assert_eq!(corpus.scenarios[42].spec.pair(), OraclePair::KlimovVsExact);
    // PR 6 appended the fabric block after the PR-5 tail.
    assert_eq!(
        corpus.scenarios[56].spec.pair(),
        OraclePair::FabricVsErlangC
    );
    assert_eq!(corpus.scenarios[56].label, "fabric-mmc c=2 rho=0.60");
    // PR 7 appended the finite-buffer fabric block after the Erlang-C tail.
    assert_eq!(corpus.scenarios[61].spec.pair(), OraclePair::FabricVsMmck);
    assert_eq!(corpus.scenarios[61].label, "fabric-mmck c=2 K=4 rho=0.85");
}

#[test]
fn the_fabric_erlang_c_block_spans_server_counts_and_loads() {
    let corpus = generate_corpus(DEFAULT_SEED);
    let labels: Vec<&str> = corpus
        .scenarios
        .iter()
        .filter(|s| s.spec.pair() == OraclePair::FabricVsErlangC)
        .map(|s| s.label.as_str())
        .collect();
    assert!(labels.len() >= 5, "only {} fabric scenarios", labels.len());
    assert!(labels.iter().any(|l| l.contains("c=2")));
    assert!(labels.iter().any(|l| l.contains("c=8")));
}

#[test]
fn the_fabric_mmck_block_covers_the_reductions_and_overload() {
    // The finite-buffer block must keep the shapes that pin down the
    // M/M/c/K family: a single-server chain (the geometric closed form)
    // and at least one genuinely overloaded scenario — the regime where
    // the Erlang-C pair is undefined but blocking still has an exact value.
    let corpus = generate_corpus(DEFAULT_SEED);
    let mmck: Vec<_> = corpus
        .scenarios
        .iter()
        .filter(|s| s.spec.pair() == OraclePair::FabricVsMmck)
        .collect();
    assert!(mmck.len() >= 5, "only {} fabric-mmck scenarios", mmck.len());
    assert!(mmck.iter().any(|s| s.label.contains("c=1")));
    let overloaded = mmck.iter().any(|s| {
        matches!(
            s.spec,
            ss_verify::scenario::Spec::FabricFinite {
                servers,
                lambda,
                mu,
                ..
            } if lambda > servers as f64 * mu
        )
    });
    assert!(overloaded, "no overloaded M/M/c/K scenario left");
}

//! Tier-1 integration test: the fast corpus slice must pass every oracle
//! check, cover the required diversity, and be bit-identical across thread
//! counts (the same contract CI enforces via `verify --check`).

use ss_sim::pool;
use ss_verify::corpus::generate_corpus;
use ss_verify::run::{format_report_line, run_corpus, summarize};
use ss_verify::scenario::Budget;
use ss_verify::{OraclePair, DEFAULT_SEED};
use std::collections::HashSet;

#[test]
fn check_corpus_passes_and_is_thread_count_invariant() {
    let corpus = generate_corpus(DEFAULT_SEED);
    assert!(
        corpus.len() >= 30,
        "corpus has only {} scenarios",
        corpus.len()
    );
    let pairs: HashSet<OraclePair> = corpus.scenarios.iter().map(|s| s.spec.pair()).collect();
    assert!(
        pairs.len() >= 5,
        "corpus covers only {} oracle pairs",
        pairs.len()
    );

    let budget = Budget::check();
    let serial = pool::with_threads(1, || run_corpus(&corpus, &budget));
    let parallel = pool::with_threads(4, || run_corpus(&corpus, &budget));

    // Every oracle check passes on the fast budget.
    let (passed, total) = summarize(&serial);
    let failures: Vec<String> = serial
        .iter()
        .filter(|r| !r.verdict.pass)
        .map(format_report_line)
        .collect();
    assert_eq!(
        passed,
        total,
        "failed oracle checks:\n{}",
        failures.join("\n")
    );

    // Bit-identical reports for any thread count: compare the raw bits of
    // every numeric field, not formatted strings, so -0.0 vs 0.0 or a
    // last-ulp drift cannot hide.
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.label, b.label);
        assert_eq!(a.verdict.pass, b.verdict.pass);
        assert_eq!(
            a.verdict.simulated.to_bits(),
            b.verdict.simulated.to_bits(),
            "scenario {} diverged across thread counts",
            a.label
        );
        assert_eq!(a.verdict.exact.to_bits(), b.verdict.exact.to_bits());
        assert_eq!(
            a.verdict.ci_half_width.to_bits(),
            b.verdict.ci_half_width.to_bits()
        );
    }
}

#[test]
fn every_oracle_pair_appears_in_the_corpus() {
    let corpus = generate_corpus(DEFAULT_SEED);
    let pairs: HashSet<OraclePair> = corpus.scenarios.iter().map(|s| s.spec.pair()).collect();
    for p in OraclePair::ALL {
        assert!(pairs.contains(&p), "corpus misses oracle pair {p}");
    }
}

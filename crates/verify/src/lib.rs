//! # ss-verify — analytic-oracle cross-validation
//!
//! The workspace contains two kinds of machinery for the same quantities:
//! Monte-Carlo simulators (`ss-queueing::mg1`, `ss-bandits::simulate`) and
//! exact solvers (Pollaczek–Khinchine and Cobham formulas, conservation
//! laws, value iteration on joint bandit MDPs, the simplex LP).  This crate
//! pits them against each other, in the simulation-vs-theory spirit of the
//! source survey: a generated corpus of diverse scenarios (service
//! families x load levels x priority structures x class/project counts) is
//! fanned out over the `ss_sim::pool`, and every scenario yields a
//! tolerance-checked [`oracle::Verdict`] whose Monte-Carlo slack comes from
//! confidence intervals over seeded replications.
//!
//! Oracle pairs (see [`oracle::OraclePair`]):
//!
//! | simulated / computed            | exact oracle                                   |
//! |---------------------------------|------------------------------------------------|
//! | FIFO M/G/1 mean wait            | Pollaczek–Khinchine                            |
//! | nonpreemptive priority cost     | Cobham                                         |
//! | preemptive priority cost        | classical preemptive-resume formulas           |
//! | `Σ ρ_j W_j` under priority sim  | conservation-law constant                      |
//! | Gittins-rule roll-outs          | value iteration on the joint MDP               |
//! | primal simplex objective        | explicit dual's objective (strong duality)     |
//! | achievable-region LP optimum    | exact Cobham cost of the cµ order              |
//! | Klimov-network sim (index order)| Cobham (no feedback) / chain-workload constant |
//! | Whittle-priority restless sim   | exact joint-chain policy value + DP/LP gates   |
//! | SEPT/LEPT/WSEPT list schedules  | exact subset-DP flowtime/makespan recursions   |
//! | fabric M/M/c central-queue wait | Erlang-C mean-wait formula                     |
//!
//! The `verify` binary mirrors the `experiments`/`sweeps` harness
//! conventions (`--jobs`, `--json`, `--check`); `--check` runs the corpus
//! on a fast budget and prints wall-clock-free report lines, so CI can diff
//! `SS_THREADS=1` against `SS_THREADS=4` byte-for-byte.
//!
//! ```
//! use ss_sim::rng::RngStreams;
//! use ss_verify::corpus::generate_corpus;
//! use ss_verify::oracle::OraclePair;
//! use ss_verify::run::run_scenario;
//! use ss_verify::scenario::Budget;
//!
//! let corpus = generate_corpus(ss_verify::DEFAULT_SEED);
//! let lp = corpus.scenarios.iter().find(|s| s.spec.pair() == OraclePair::LpPrimalVsDual).unwrap();
//! let report = run_scenario(lp, &Budget::check(), &RngStreams::new(corpus.seed));
//! assert!(report.verdict.pass);
//! ```

pub mod corpus;
pub mod oracle;
pub mod run;
pub mod scenario;

pub use corpus::{generate_corpus, Corpus, CorpusStats};
pub use oracle::{OraclePair, Tolerance, Verdict};
pub use run::{
    format_report_line, render_check_report, run_corpus, run_scenario, summarize, ScenarioReport,
};
pub use scenario::{Budget, QueueMode, Scenario, Spec};

/// Master seed of the committed corpus (CI and the tier-1 test run it).
pub const DEFAULT_SEED: u64 = 0xC0DE_5EED;

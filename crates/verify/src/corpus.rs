//! Deterministic scenario-corpus generation.
//!
//! The corpus is a pure function of the master seed: scenario `i` draws its
//! parameters from the dedicated generation substream
//! `RngStreams::substream(GENERATION_STREAM, i)`, so **appending** scenario
//! blocks at the end never perturbs the parameters of existing scenarios
//! (inserting or re-ordering blocks shifts the ids — and therefore the
//! substreams — of everything after the edit, re-baselining that tail; grow
//! the corpus by appending).  The run-time replication streams (keyed by
//! `(scenario_id, rep)` in [`crate::run`]) are disjoint from generation by
//! the substream family split.  Diversity axes: service-distribution
//! family x load level x priority structure x class/project count.

use crate::scenario::{BatchMetric, QueueMode, Scenario, Spec};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use ss_bandits::instances::{random_project, random_restless_project};
use ss_core::job::JobClass;
use ss_distributions::{
    dyn_dist, Deterministic, DynDist, Erlang, Exponential, HyperExponential, LogNormal, TwoPoint,
    Uniform, Weibull,
};
use ss_lp::{standard_dual, standard_primal, LinearProgram};
use ss_queueing::klimov::{klimov_order, KlimovNetwork};
use ss_sim::rng::RngStreams;

/// Stream id of the corpus-generation substream family (disjoint from the
/// `(scenario_id, rep)` run-time families because scenario ids stay tiny).
pub const GENERATION_STREAM: u64 = 0x4745_4E45; // "GENE"

/// Number of service-distribution families [`service_family`] cycles over.
pub const NUM_FAMILIES: usize = 10;

/// The `which`-th service-distribution family with the given mean.
/// Families cover the SCV spectrum from 0 (deterministic) to 4
/// (hyperexponential), plus non-phase-type laws (Weibull, log-normal,
/// two-point).
pub fn service_family(which: usize, mean: f64) -> (DynDist, &'static str) {
    match which % NUM_FAMILIES {
        0 => (dyn_dist(Exponential::with_mean(mean)), "Exp"),
        1 => (dyn_dist(Erlang::with_mean(2, mean)), "Erlang2"),
        2 => (dyn_dist(Erlang::with_mean(4, mean)), "Erlang4"),
        3 => (dyn_dist(HyperExponential::with_mean_scv(mean, 2.0)), "H2s2"),
        4 => (dyn_dist(HyperExponential::with_mean_scv(mean, 4.0)), "H2s4"),
        5 => (dyn_dist(Deterministic::new(mean)), "Det"),
        6 => (dyn_dist(Uniform::new(0.4 * mean, 1.6 * mean)), "Unif"),
        7 => (dyn_dist(Weibull::with_mean(1.5, mean)), "Weib"),
        8 => (dyn_dist(LogNormal::with_mean_scv(mean, 0.5)), "LogN"),
        // Mean p*0.4m + (1-p)*1.2m = m at p = 0.25.
        _ => (dyn_dist(TwoPoint::new(0.25, 0.4 * mean, 1.2 * mean)), "Two"),
    }
}

/// Generate `k` job classes with total load exactly `rho`, cycling service
/// families starting at `fam_base`.  Returns the classes and a label piece
/// naming the families used.
fn queue_classes(
    rng: &mut ChaCha8Rng,
    k: usize,
    rho: f64,
    fam_base: usize,
) -> (Vec<JobClass>, String) {
    let means: Vec<f64> = (0..k).map(|_| rng.gen_range(0.5..2.0)).collect();
    let shares: Vec<f64> = (0..k).map(|_| rng.gen_range(0.5..1.5)).collect();
    let share_total: f64 = shares.iter().sum();
    let mut fams = String::new();
    let classes = (0..k)
        .map(|j| {
            let (dist, name) = service_family(fam_base + j, means[j]);
            if j > 0 {
                fams.push('+');
            }
            fams.push_str(name);
            let lambda = rho * shares[j] / share_total / means[j];
            let cost = rng.gen_range(0.5..4.0);
            JobClass::new(j, lambda, dist, cost)
        })
        .collect();
    (classes, fams)
}

/// A uniformly random priority order.
fn random_order(rng: &mut ChaCha8Rng, k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..k).collect();
    order.shuffle(rng);
    order
}

/// A random `k`-class Klimov network with total load exactly `rho`,
/// cycling service families from `fam_base`.  With `feedback`, every class
/// routes to one random target with probability 0.15–0.45 (row sums stay
/// well below 1, so chains terminate fast); arrival rates are rescaled
/// through the traffic equations so the *effective* load hits `rho`.
fn klimov_network(
    rng: &mut ChaCha8Rng,
    k: usize,
    rho: f64,
    fam_base: usize,
    feedback: bool,
) -> (KlimovNetwork, String) {
    let means: Vec<f64> = (0..k).map(|_| rng.gen_range(0.5..2.0)).collect();
    let shares: Vec<f64> = (0..k).map(|_| rng.gen_range(0.5..1.5)).collect();
    let costs: Vec<f64> = (0..k).map(|_| rng.gen_range(0.5..4.0)).collect();
    let mut fams = String::new();
    let services: Vec<DynDist> = (0..k)
        .map(|j| {
            let (dist, name) = service_family(fam_base + j, means[j]);
            if j > 0 {
                fams.push('+');
            }
            fams.push_str(name);
            dist
        })
        .collect();
    let mut routing = vec![vec![0.0; k]; k];
    if feedback {
        for row in routing.iter_mut() {
            let target = rng.gen_range(0..k);
            row[target] = rng.gen_range(0.15..0.45);
        }
    }
    // Scale the external rates so the effective load (through the traffic
    // equations) is exactly rho: the load is linear in the arrival vector.
    let provisional = KlimovNetwork::new(
        shares.clone(),
        services.clone(),
        costs.clone(),
        routing.clone(),
    );
    let scale = rho / provisional.total_load();
    let arrivals: Vec<f64> = shares.iter().map(|s| s * scale).collect();
    (KlimovNetwork::new(arrivals, services, costs, routing), fams)
}

/// A random feasible-and-bounded primal LP (`min c·x, A x >= b, x >= 0`
/// with strictly positive data) together with its standard-form dual
/// (`max b·y, Aᵀ y <= c, y >= 0`), both built by `ss_lp::duality`.
fn lp_duality_pair(
    rng: &mut ChaCha8Rng,
    vars: usize,
    cons: usize,
) -> (LinearProgram, LinearProgram) {
    let a: Vec<Vec<f64>> = (0..cons)
        .map(|_| (0..vars).map(|_| rng.gen_range(0.1..1.0)).collect())
        .collect();
    let b: Vec<f64> = (0..cons).map(|_| rng.gen_range(0.5..2.0)).collect();
    let c: Vec<f64> = (0..vars).map(|_| rng.gen_range(0.5..2.5)).collect();
    (standard_primal(&a, &b, &c), standard_dual(&a, &b, &c))
}

/// A generated corpus together with the master seed it was derived from.
///
/// Carrying the seed with the scenarios makes the run-time stream contract
/// unbreakable: [`crate::run::run_corpus`] derives replication streams from
/// `self.seed`, so a corpus can never be run against mismatched streams.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The master seed the scenarios were generated from.
    pub seed: u64,
    /// The scenarios, with `scenarios[i].id == i`.
    pub scenarios: Vec<Scenario>,
}

impl Corpus {
    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the corpus is empty (it never is for a generated corpus).
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The machine-readable shape of this corpus — the one source of truth
    /// the `verify --check` trailer, the conformance manifest expectations
    /// and the corpus-pin tests all read.
    pub fn stats(&self) -> CorpusStats {
        let pairs: std::collections::BTreeSet<_> =
            self.scenarios.iter().map(|s| s.spec.pair().key()).collect();
        CorpusStats {
            pairs: pairs.len(),
            scenarios: self.scenarios.len(),
            seed: self.seed,
        }
    }
}

/// Distinct-oracle-pair count, scenario count and master seed of a corpus,
/// rendered by `verify --check` as a single trailer line so downstream
/// consumers (the `ss-conform` subsystem, the corpus-pin tests) parse one
/// declared value instead of scraping `PASS <pair>` report lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusStats {
    /// Number of distinct oracle pairs the scenarios cover.
    pub pairs: usize,
    /// Total scenario count.
    pub scenarios: usize,
    /// Master seed the corpus was generated from.
    pub seed: u64,
}

impl CorpusStats {
    /// The fixed prefix of the trailer line.
    pub const TRAILER_PREFIX: &'static str = "corpus-trailer:";

    /// Render the machine-readable trailer line (no newline).
    pub fn trailer(&self) -> String {
        format!(
            "{} pairs={} scenarios={} seed={}",
            Self::TRAILER_PREFIX,
            self.pairs,
            self.scenarios,
            self.seed
        )
    }

    /// Parse the first trailer line found in `text` (a full report or a
    /// single line).  Returns `None` when no well-formed trailer is present.
    pub fn parse(text: &str) -> Option<CorpusStats> {
        let line = text
            .lines()
            .find(|l| l.trim_start().starts_with(Self::TRAILER_PREFIX))?;
        let mut pairs = None;
        let mut scenarios = None;
        let mut seed = None;
        for field in line.trim_start()[Self::TRAILER_PREFIX.len()..].split_whitespace() {
            let (key, value) = field.split_once('=')?;
            match key {
                "pairs" => pairs = value.parse::<usize>().ok(),
                "scenarios" => scenarios = value.parse::<usize>().ok(),
                "seed" => seed = value.parse::<u64>().ok(),
                _ => return None,
            }
        }
        Some(CorpusStats {
            pairs: pairs?,
            scenarios: scenarios?,
            seed: seed?,
        })
    }
}

/// Generate the full cross-validation corpus for `seed`.
pub fn generate_corpus(seed: u64) -> Corpus {
    let streams = RngStreams::new(seed);
    let mut scenarios: Vec<Scenario> = Vec::new();
    let push = |scenarios: &mut Vec<Scenario>, label: String, spec: Spec| {
        let id = scenarios.len();
        scenarios.push(Scenario { id, label, spec });
    };

    // FIFO vs Pollaczek-Khinchine: one scenario per service family, loads
    // cycling over light / moderate / heavy traffic, 1-3 classes.  The
    // class-count and load cycles are staggered (f % 3 vs f / 3) so the
    // block spans the full k x rho cross product, not just its diagonal.
    for f in 0..NUM_FAMILIES {
        let mut rng = streams.substream(GENERATION_STREAM, scenarios.len() as u64);
        let rho = [0.30, 0.50, 0.70][(f / 3) % 3];
        let k = 1 + f % 3;
        let (classes, fams) = queue_classes(&mut rng, k, rho, f);
        push(
            &mut scenarios,
            format!("mg1-fifo k={k} rho={rho:.2} {fams}"),
            Spec::Queue {
                classes,
                order: (0..k).collect(),
                mode: QueueMode::Fifo,
            },
        );
    }

    // Nonpreemptive priority vs Cobham: 2-4 classes, random priority orders.
    for t in 0..8 {
        let mut rng = streams.substream(GENERATION_STREAM, scenarios.len() as u64);
        let k = 2 + t % 3;
        let rho = [0.45, 0.60, 0.72][(t / 3) % 3];
        let (classes, fams) = queue_classes(&mut rng, k, rho, 2 * t + 1);
        let order = random_order(&mut rng, k);
        push(
            &mut scenarios,
            format!("mg1-np k={k} rho={rho:.2} {fams} order={order:?}"),
            Spec::Queue {
                classes,
                order,
                mode: QueueMode::Nonpreemptive,
            },
        );
    }

    // Preemptive-resume priority vs the classical formulas.
    for t in 0..4 {
        let mut rng = streams.substream(GENERATION_STREAM, scenarios.len() as u64);
        let k = 2 + t % 2;
        let rho = [0.50, 0.65][(t / 2) % 2];
        let (classes, fams) = queue_classes(&mut rng, k, rho, 3 * t);
        let order = random_order(&mut rng, k);
        push(
            &mut scenarios,
            format!("mg1-preempt k={k} rho={rho:.2} {fams} order={order:?}"),
            Spec::Queue {
                classes,
                order,
                mode: QueueMode::Preemptive,
            },
        );
    }

    // Conservation-law identity under nonpreemptive priority simulation.
    for t in 0..6 {
        let mut rng = streams.substream(GENERATION_STREAM, scenarios.len() as u64);
        let k = 3;
        let rho = [0.40, 0.60, 0.72][t % 3];
        let (classes, fams) = queue_classes(&mut rng, k, rho, 4 * t + 2);
        let order = random_order(&mut rng, k);
        push(
            &mut scenarios,
            format!("conservation k={k} rho={rho:.2} {fams} order={order:?}"),
            Spec::Queue {
                classes,
                order,
                mode: QueueMode::Conservation,
            },
        );
    }

    // Gittins roll-outs vs the exact joint DP on small bandits.
    for t in 0..6 {
        let mut rng = streams.substream(GENERATION_STREAM, scenarios.len() as u64);
        let n_projects = 2 + t % 2;
        let states = 2 + t % 3;
        let discount = [0.80, 0.90][(t / 2) % 2];
        let projects: Vec<_> = (0..n_projects)
            .map(|_| random_project(states, &mut rng))
            .collect();
        push(
            &mut scenarios,
            format!("bandit projects={n_projects} states={states} beta={discount:.2}"),
            Spec::Bandit { projects, discount },
        );
    }

    // Strong duality on random feasible primal/dual pairs.
    for &(vars, cons) in &[(4usize, 3usize), (6, 4), (8, 6), (5, 5)] {
        let mut rng = streams.substream(GENERATION_STREAM, scenarios.len() as u64);
        let (primal, dual) = lp_duality_pair(&mut rng, vars, cons);
        push(
            &mut scenarios,
            format!("lp-duality {vars}x{cons}"),
            Spec::LpDuality { primal, dual },
        );
    }

    // Achievable-region LP optimum vs the exact cµ cost.
    for t in 0..4 {
        let mut rng = streams.substream(GENERATION_STREAM, scenarios.len() as u64);
        let k = 3 + t % 2;
        let rho = [0.50, 0.62, 0.70, 0.75][t % 4];
        let (classes, fams) = queue_classes(&mut rng, k, rho, 3 * t + 2);
        push(
            &mut scenarios,
            format!("achievable-lp k={k} rho={rho:.2} {fams}"),
            Spec::AchievableLp { classes },
        );
    }

    // Klimov networks under the Klimov index order: feedback-free vs
    // Cobham's cost, feedback vs the exact chain-workload constant.
    for t in 0..5 {
        let mut rng = streams.substream(GENERATION_STREAM, scenarios.len() as u64);
        let k = 2 + t % 3;
        let rho = [0.45, 0.60, 0.70][t % 3];
        let feedback = t >= 2;
        let (network, fams) = klimov_network(&mut rng, k, rho, 5 * t + 1, feedback);
        let order = klimov_order(&network);
        push(
            &mut scenarios,
            format!(
                "klimov k={k} rho={rho:.2} {fams} {}",
                if feedback { "feedback" } else { "no-feedback" }
            ),
            Spec::Klimov {
                network,
                order,
                feedback,
            },
        );
    }

    // Whittle-priority restless bandits vs the exact joint-chain policy
    // value (dense random projects keep every induced chain unichain).
    for t in 0..4 {
        let mut rng = streams.substream(GENERATION_STREAM, scenarios.len() as u64);
        let n_projects = 2 + t % 2;
        let states = 2 + t % 3;
        let m = if t == 3 { 2 } else { 1 };
        let projects: Vec<_> = (0..n_projects)
            .map(|_| random_restless_project(states, &mut rng))
            .collect();
        push(
            &mut scenarios,
            format!("restless projects={n_projects} states={states} m={m}"),
            Spec::Restless { projects, m },
        );
    }

    // SEPT/LEPT/WSEPT list schedules on identical machines vs the exact
    // subset DP for exponential jobs.
    for t in 0..5 {
        let mut rng = streams.substream(GENERATION_STREAM, scenarios.len() as u64);
        let n_jobs = 5 + t % 4;
        let machines = 2 + t % 2;
        let rates: Vec<f64> = (0..n_jobs).map(|_| rng.gen_range(0.4..2.5)).collect();
        let (metric, rule) = [
            (BatchMetric::Flowtime, "sept"),
            (BatchMetric::Makespan, "lept"),
            (BatchMetric::Flowtime, "sept"),
            (BatchMetric::WeightedFlowtime, "wsept"),
            (BatchMetric::Makespan, "lept"),
        ][t];
        let weights: Vec<f64> = if metric == BatchMetric::WeightedFlowtime {
            (0..n_jobs).map(|_| rng.gen_range(0.5..3.0)).collect()
        } else {
            vec![1.0; n_jobs]
        };
        let mut order: Vec<usize> = (0..n_jobs).collect();
        match rule {
            // SEPT/WSEPT: decreasing w·λ (unit weights make this SEPT).
            "sept" | "wsept" => order.sort_by(|&a, &b| {
                (weights[b] * rates[b])
                    .partial_cmp(&(weights[a] * rates[a]))
                    .unwrap()
            }),
            // LEPT: increasing rate (longest expected processing first).
            _ => order.sort_by(|&a, &b| rates[a].partial_cmp(&rates[b]).unwrap()),
        }
        push(
            &mut scenarios,
            format!("list-schedule {rule} n={n_jobs} m={machines}"),
            Spec::ListSchedule {
                rates,
                weights,
                machines,
                order,
                metric,
            },
        );
    }

    // The fabric-vs-Erlang-C pair: the service-fabric DES as a single
    // central-queue FIFO M/M/c tier across server counts and loads.  The
    // per-server rate is drawn from the generation substream (the pair must
    // hold for any µ); λ is then set to hit the target load exactly.
    for &(servers, rho) in &[(2usize, 0.60), (3, 0.75), (4, 0.55), (5, 0.70), (8, 0.65)] {
        let mut rng = streams.substream(GENERATION_STREAM, scenarios.len() as u64);
        let mu = rng.gen_range(0.5..2.0);
        let lambda = rho * servers as f64 * mu;
        push(
            &mut scenarios,
            format!("fabric-mmc c={servers} rho={rho:.2}"),
            Spec::Fabric {
                servers,
                lambda,
                mu,
            },
        );
    }

    // The fabric-vs-M/M/c/K pair: the same single-tier configuration with a
    // bounded waiting room, checked on the blocking probability.  Shapes
    // span the family's reductions and regimes: a small Erlang-like buffer,
    // a single-server chain (the geometric closed form), a near-critical
    // load, and one deliberate overload point — the regime where Erlang-C
    // diverges but the finite-buffer formula (and the simulator's drop
    // accounting) stay well defined.  µ is drawn from the generation
    // substream as above; λ is set from the target ρ = λ/(cµ).
    for &(servers, queue_cap, rho) in &[
        (2usize, 2usize, 0.85),
        (3, 3, 0.90),
        (1, 4, 0.90),
        (4, 4, 1.10),
        (6, 2, 0.80),
    ] {
        let mut rng = streams.substream(GENERATION_STREAM, scenarios.len() as u64);
        let mu = rng.gen_range(0.5..2.0);
        let lambda = rho * servers as f64 * mu;
        push(
            &mut scenarios,
            format!(
                "fabric-mmck c={servers} K={} rho={rho:.2}",
                servers + queue_cap
            ),
            Spec::FabricFinite {
                servers,
                queue_cap,
                lambda,
                mu,
            },
        );
    }

    Corpus { seed, scenarios }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn corpus_is_large_and_diverse() {
        let corpus = generate_corpus(1);
        assert!(corpus.len() >= 30, "corpus has {} scenarios", corpus.len());
        assert_eq!(corpus.seed, 1);
        let pairs: HashSet<_> = corpus.scenarios.iter().map(|s| s.spec.pair()).collect();
        assert!(
            pairs.len() >= 5,
            "only {} oracle pairs covered",
            pairs.len()
        );
        // ids are the corpus indices (the RNG stream contract).
        for (i, s) in corpus.scenarios.iter().enumerate() {
            assert_eq!(s.id, i);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_corpus(7);
        let b = generate_corpus(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.scenarios.iter().zip(&b.scenarios) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.spec.pair(), y.spec.pair());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_corpus(1);
        let b = generate_corpus(2);
        // Same structure, different parameters: at least the queue labels
        // stay equal only if the drawn means coincide, which they must not.
        let diff = a
            .scenarios
            .iter()
            .zip(&b.scenarios)
            .filter(|(x, y)| match (&x.spec, &y.spec) {
                (Spec::Queue { classes: ca, .. }, Spec::Queue { classes: cb, .. }) => {
                    ca[0].arrival_rate != cb[0].arrival_rate
                }
                _ => false,
            })
            .count();
        assert!(diff > 0);
    }

    #[test]
    fn queue_loads_are_stable() {
        for s in generate_corpus(3).scenarios {
            if let Spec::Queue { classes, .. } = &s.spec {
                let rho: f64 = classes.iter().map(|c| c.load()).sum();
                assert!(rho < 0.95, "{}: unstable rho {rho}", s.label);
            }
        }
    }

    #[test]
    fn trailer_round_trips_through_parse() {
        let stats = generate_corpus(9).stats();
        assert_eq!(CorpusStats::parse(&stats.trailer()), Some(stats));
        // Embedded in a report, surrounded by other lines.
        let report = format!("#0 PASS ...\n{}\nextra\n", stats.trailer());
        assert_eq!(CorpusStats::parse(&report), Some(stats));
        // Malformed trailers must not parse.
        assert_eq!(CorpusStats::parse("corpus-trailer: pairs=x"), None);
        assert_eq!(CorpusStats::parse("no trailer here"), None);
    }

    #[test]
    fn family_cycle_covers_all_kinds() {
        let names: HashSet<_> = (0..NUM_FAMILIES)
            .map(|f| service_family(f, 1.0).1)
            .collect();
        assert_eq!(names.len(), NUM_FAMILIES);
    }
}

//! Scenario vocabulary: what one cross-validation instance consists of.
//!
//! A [`Scenario`] is one parameterized instance of one oracle pair: a
//! multiclass queue with a service-distribution mix, load level and priority
//! structure; a small multi-armed bandit; or a linear program together with
//! its hand-constructed dual.  Scenarios are *data* — generation lives in
//! [`crate::corpus`], execution in [`crate::run`] — so the corpus can be
//! listed, sliced and fanned out over the pool without re-deriving anything.

use crate::oracle::OraclePair;
use ss_bandits::project::BanditProject;
use ss_bandits::restless::RestlessProject;
use ss_core::job::JobClass;
use ss_lp::LinearProgram;
use ss_queueing::klimov::KlimovNetwork;

/// Queueing sub-mode: which discipline is simulated and which formula
/// serves as the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueMode {
    /// FIFO vs Pollaczek–Khinchine.
    Fifo,
    /// Nonpreemptive static priority vs Cobham.
    Nonpreemptive,
    /// Preemptive-resume static priority vs the classical formulas.
    Preemptive,
    /// Nonpreemptive priority sim, checked against the conservation-law
    /// constant `Σ_j ρ_j W_j = ρ W0 / (1 - ρ)` instead of per-class waits.
    Conservation,
}

/// The oracle pair a queueing sub-mode exercises.
pub fn pair_for_mode(mode: QueueMode) -> OraclePair {
    match mode {
        QueueMode::Fifo => OraclePair::FifoVsPollaczekKhinchine,
        QueueMode::Nonpreemptive => OraclePair::NonpreemptiveVsCobham,
        QueueMode::Preemptive => OraclePair::PreemptiveVsFormula,
        QueueMode::Conservation => OraclePair::ConservationIdentity,
    }
}

/// Which statistic a list-schedule scenario compares (the matching exact
/// DP recursion is chosen in `crate::run`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMetric {
    /// `E[Σ C]` vs `ss_batch::exact_exp::list_policy_flowtime` (unit weights).
    Flowtime,
    /// `E[Σ w C]` vs the weighted flowtime recursion.
    WeightedFlowtime,
    /// `E[max C]` vs `ss_batch::exact_exp::list_policy_makespan`.
    Makespan,
}

/// The model underlying one scenario.
#[derive(Debug, Clone)]
pub enum Spec {
    /// A multiclass M/G/1 queue simulated against an exact formula.
    Queue {
        /// Job classes (arrival rates, service distributions, holding costs).
        classes: Vec<JobClass>,
        /// Static priority order, highest first (ignored by [`QueueMode::Fifo`]).
        order: Vec<usize>,
        /// Which discipline/oracle combination to run.
        mode: QueueMode,
    },
    /// A small multi-armed bandit: Gittins-rule roll-outs vs the exact DP.
    Bandit {
        /// The projects (arms).
        projects: Vec<BanditProject>,
        /// Discount factor in `[0, 1)`.
        discount: f64,
    },
    /// A primal LP and its explicitly constructed dual (strong duality).
    LpDuality {
        /// The primal minimisation problem.
        primal: LinearProgram,
        /// Its dual maximisation problem.
        dual: LinearProgram,
    },
    /// The achievable-region polymatroid LP of a multiclass M/G/1 queue,
    /// whose optimum must equal the exact Cobham cost of the cµ order.
    AchievableLp {
        /// Job classes defining the polymatroid.
        classes: Vec<JobClass>,
    },
    /// A Klimov feedback network simulated under a static priority order:
    /// feedback-free networks check the holding-cost rate against Cobham,
    /// feedback networks check the full-chain workload against the exact
    /// conservation constant (`ss_queueing::klimov_sim`).
    Klimov {
        /// The network (arrivals, services, costs, Bernoulli routing).
        network: KlimovNetwork,
        /// Static priority order (the Klimov index order at generation).
        order: Vec<usize>,
        /// Whether the routing matrix has any feedback (chooses the oracle).
        feedback: bool,
    },
    /// A restless bandit run under the Whittle priority rule, checked
    /// against the exact joint-chain policy value with DP-optimum and
    /// relaxation-bound sandwich gates.
    Restless {
        /// The projects.
        projects: Vec<RestlessProject>,
        /// Projects activated per period.
        m: usize,
    },
    /// The service-fabric simulator configured as a single central-queue
    /// FIFO M/M/c tier, whose tier-0 mean wait must match the Erlang-C
    /// formula `W_q = C(c, λ/µ) / (cµ - λ)`.
    Fabric {
        /// Number of parallel servers `c`.
        servers: usize,
        /// Poisson arrival rate `λ`.
        lambda: f64,
        /// Per-server exponential service rate `µ`.
        mu: f64,
    },
    /// The service-fabric simulator with a *bounded* central FIFO queue,
    /// whose tier-0 drop fraction must match the M/M/c/K blocking
    /// probability (PASTA: the fraction of arrivals finding the system
    /// full equals the stationary probability of state `K`).
    FabricFinite {
        /// Number of parallel servers `c`.
        servers: usize,
        /// Waiting-room slots beyond the servers (total capacity
        /// `K = servers + queue_cap`).
        queue_cap: usize,
        /// Poisson arrival rate `λ`.
        lambda: f64,
        /// Per-server exponential service rate `µ`.
        mu: f64,
    },
    /// Exponential jobs list-scheduled on identical parallel machines,
    /// checked against the exact subset-DP recursions of
    /// `ss_batch::exact_exp`.
    ListSchedule {
        /// Completion rate of each job.
        rates: Vec<f64>,
        /// Holding-cost weight of each job (all 1 unless weighted).
        weights: Vec<f64>,
        /// Number of identical machines.
        machines: usize,
        /// The static list evaluated on both sides of the pair.
        order: Vec<usize>,
        /// Which statistic is compared.
        metric: BatchMetric,
    },
}

impl Spec {
    /// The oracle pair this spec exercises.  Derived, not stored, so a
    /// scenario's spec and its reported pair can never disagree.
    pub fn pair(&self) -> OraclePair {
        match self {
            Spec::Queue { mode, .. } => pair_for_mode(*mode),
            Spec::Bandit { .. } => OraclePair::GittinsRolloutVsDp,
            Spec::LpDuality { .. } => OraclePair::LpPrimalVsDual,
            Spec::AchievableLp { .. } => OraclePair::AchievableLpVsCmu,
            Spec::Klimov { .. } => OraclePair::KlimovVsExact,
            Spec::Restless { .. } => OraclePair::WhittleVsDp,
            Spec::Fabric { .. } => OraclePair::FabricVsErlangC,
            Spec::FabricFinite { .. } => OraclePair::FabricVsMmck,
            Spec::ListSchedule { .. } => OraclePair::SeptLeptVsDp,
        }
    }
}

/// One cross-validation instance.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Corpus index; doubles as the scenario's RNG stream id.
    pub id: usize,
    /// Deterministic human-readable description (families, load, sizes).
    pub label: String,
    /// The model to run (its oracle pair is [`Spec::pair`]).
    pub spec: Spec,
}

/// Simulation effort of one corpus run.
///
/// `check()` is the fast slice used by the tier-1 integration test and the
/// CI determinism gate; `full()` is the thorough profile behind the plain
/// `verify` binary run.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Independent replications per queueing scenario.
    pub queue_replications: usize,
    /// Simulated horizon per queueing replication.
    pub horizon: f64,
    /// Warm-up period excluded from time averages.
    pub warmup: f64,
    /// Monte-Carlo roll-outs per bandit scenario.
    pub bandit_replications: usize,
    /// Independent replications per restless-bandit scenario.
    pub restless_replications: usize,
    /// Periods simulated per restless replication.
    pub restless_horizon: usize,
    /// Schedule realisations per list-schedule scenario.
    pub list_replications: usize,
    /// Confidence level of the CI term in the tolerance gate (e.g. `0.99`).
    pub confidence: f64,
}

impl Budget {
    /// Fast corpus slice: seconds of total work, used by CI and tier-1 tests.
    pub fn check() -> Self {
        Self {
            queue_replications: 6,
            horizon: 8_000.0,
            warmup: 800.0,
            bandit_replications: 300,
            restless_replications: 4,
            restless_horizon: 4_000,
            list_replications: 1_500,
            confidence: 0.99,
        }
    }

    /// Thorough profile for the default `verify` binary run.
    pub fn full() -> Self {
        Self {
            queue_replications: 12,
            horizon: 24_000.0,
            warmup: 2_000.0,
            bandit_replications: 1_000,
            restless_replications: 8,
            restless_horizon: 12_000,
            list_replications: 6_000,
            confidence: 0.99,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_ordered() {
        let check = Budget::check();
        let full = Budget::full();
        assert!(check.queue_replications < full.queue_replications);
        assert!(check.horizon < full.horizon);
        assert!(check.bandit_replications < full.bandit_replications);
        assert!(check.restless_replications < full.restless_replications);
        assert!(check.restless_horizon < full.restless_horizon);
        assert!(check.list_replications < full.list_replications);
        assert!(check.warmup < check.horizon);
        assert!(full.warmup < full.horizon);
    }
}

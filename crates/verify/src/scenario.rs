//! Scenario vocabulary: what one cross-validation instance consists of.
//!
//! A [`Scenario`] is one parameterized instance of one oracle pair: a
//! multiclass queue with a service-distribution mix, load level and priority
//! structure; a small multi-armed bandit; or a linear program together with
//! its hand-constructed dual.  Scenarios are *data* — generation lives in
//! [`crate::corpus`], execution in [`crate::run`] — so the corpus can be
//! listed, sliced and fanned out over the pool without re-deriving anything.

use crate::oracle::OraclePair;
use ss_bandits::project::BanditProject;
use ss_core::job::JobClass;
use ss_lp::LinearProgram;

/// Queueing sub-mode: which discipline is simulated and which formula
/// serves as the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueMode {
    /// FIFO vs Pollaczek–Khinchine.
    Fifo,
    /// Nonpreemptive static priority vs Cobham.
    Nonpreemptive,
    /// Preemptive-resume static priority vs the classical formulas.
    Preemptive,
    /// Nonpreemptive priority sim, checked against the conservation-law
    /// constant `Σ_j ρ_j W_j = ρ W0 / (1 - ρ)` instead of per-class waits.
    Conservation,
}

/// The oracle pair a queueing sub-mode exercises.
pub fn pair_for_mode(mode: QueueMode) -> OraclePair {
    match mode {
        QueueMode::Fifo => OraclePair::FifoVsPollaczekKhinchine,
        QueueMode::Nonpreemptive => OraclePair::NonpreemptiveVsCobham,
        QueueMode::Preemptive => OraclePair::PreemptiveVsFormula,
        QueueMode::Conservation => OraclePair::ConservationIdentity,
    }
}

/// The model underlying one scenario.
#[derive(Debug, Clone)]
pub enum Spec {
    /// A multiclass M/G/1 queue simulated against an exact formula.
    Queue {
        /// Job classes (arrival rates, service distributions, holding costs).
        classes: Vec<JobClass>,
        /// Static priority order, highest first (ignored by [`QueueMode::Fifo`]).
        order: Vec<usize>,
        /// Which discipline/oracle combination to run.
        mode: QueueMode,
    },
    /// A small multi-armed bandit: Gittins-rule roll-outs vs the exact DP.
    Bandit {
        /// The projects (arms).
        projects: Vec<BanditProject>,
        /// Discount factor in `[0, 1)`.
        discount: f64,
    },
    /// A primal LP and its explicitly constructed dual (strong duality).
    LpDuality {
        /// The primal minimisation problem.
        primal: LinearProgram,
        /// Its dual maximisation problem.
        dual: LinearProgram,
    },
    /// The achievable-region polymatroid LP of a multiclass M/G/1 queue,
    /// whose optimum must equal the exact Cobham cost of the cµ order.
    AchievableLp {
        /// Job classes defining the polymatroid.
        classes: Vec<JobClass>,
    },
}

impl Spec {
    /// The oracle pair this spec exercises.  Derived, not stored, so a
    /// scenario's spec and its reported pair can never disagree.
    pub fn pair(&self) -> OraclePair {
        match self {
            Spec::Queue { mode, .. } => pair_for_mode(*mode),
            Spec::Bandit { .. } => OraclePair::GittinsRolloutVsDp,
            Spec::LpDuality { .. } => OraclePair::LpPrimalVsDual,
            Spec::AchievableLp { .. } => OraclePair::AchievableLpVsCmu,
        }
    }
}

/// One cross-validation instance.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Corpus index; doubles as the scenario's RNG stream id.
    pub id: usize,
    /// Deterministic human-readable description (families, load, sizes).
    pub label: String,
    /// The model to run (its oracle pair is [`Spec::pair`]).
    pub spec: Spec,
}

/// Simulation effort of one corpus run.
///
/// `check()` is the fast slice used by the tier-1 integration test and the
/// CI determinism gate; `full()` is the thorough profile behind the plain
/// `verify` binary run.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Independent replications per queueing scenario.
    pub queue_replications: usize,
    /// Simulated horizon per queueing replication.
    pub horizon: f64,
    /// Warm-up period excluded from time averages.
    pub warmup: f64,
    /// Monte-Carlo roll-outs per bandit scenario.
    pub bandit_replications: usize,
    /// Confidence level of the CI term in the tolerance gate (e.g. `0.99`).
    pub confidence: f64,
}

impl Budget {
    /// Fast corpus slice: seconds of total work, used by CI and tier-1 tests.
    pub fn check() -> Self {
        Self {
            queue_replications: 6,
            horizon: 8_000.0,
            warmup: 800.0,
            bandit_replications: 300,
            confidence: 0.99,
        }
    }

    /// Thorough profile for the default `verify` binary run.
    pub fn full() -> Self {
        Self {
            queue_replications: 12,
            horizon: 24_000.0,
            warmup: 2_000.0,
            bandit_replications: 1_000,
            confidence: 0.99,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_ordered() {
        let check = Budget::check();
        let full = Budget::full();
        assert!(check.queue_replications < full.queue_replications);
        assert!(check.horizon < full.horizon);
        assert!(check.bandit_replications < full.bandit_replications);
        assert!(check.warmup < check.horizon);
        assert!(full.warmup < full.horizon);
    }
}

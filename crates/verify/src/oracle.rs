//! Oracle pairs, the tolerance policy, and tolerance-checked verdicts.
//!
//! An *oracle pair* names one (simulator estimate, exact solver) comparison.
//! The tolerance policy is uniform across pairs: a comparison passes when
//!
//! ```text
//! |simulated - exact|  <=  abs + rel * |exact| + ci_half_width
//! ```
//!
//! where `ci_half_width` is the confidence-interval half-width of the
//! Monte-Carlo estimate over its replications (zero for deterministic
//! oracle pairs such as LP duality).  The additive CI term makes the gate
//! self-scaling: a scenario that simulates with more noise is allowed
//! proportionally more slack, while exact-vs-exact pairs are held to
//! numerical precision.

use std::fmt;

/// Which simulator output is compared against which analytic oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OraclePair {
    /// Simulated FIFO M/G/1 mean wait vs the Pollaczek–Khinchine formula.
    FifoVsPollaczekKhinchine,
    /// Simulated nonpreemptive priority holding-cost rate vs Cobham.
    NonpreemptiveVsCobham,
    /// Simulated preemptive-resume priority holding-cost rate vs the
    /// classical preemptive formulas.
    PreemptiveVsFormula,
    /// Simulated `Σ_j ρ_j W_j` under a work-conserving discipline vs the
    /// conservation-law constant `ρ W0 / (1 - ρ)`.
    ConservationIdentity,
    /// Monte-Carlo Gittins-rule roll-outs vs exact value iteration on the
    /// joint bandit MDP.
    GittinsRolloutVsDp,
    /// Primal simplex objective vs the hand-constructed dual's objective
    /// (strong duality: the gap must vanish).
    LpPrimalVsDual,
    /// Achievable-region polymatroid LP optimum vs the exact Cobham cost of
    /// the cµ priority order (the LP account of cµ optimality).
    AchievableLpVsCmu,
    /// Klimov-network simulator under the Klimov index order vs an exact
    /// oracle: Cobham's cost for feedback-free networks, the exact
    /// chain-workload conservation constant for feedback networks.
    KlimovVsExact,
    /// Simulated Whittle-priority restless bandit vs the exact joint-chain
    /// evaluation of the same policy, with the joint-MDP optimum and the
    /// Whittle LP relaxation bound enforced as exact-vs-exact sandwich
    /// gates.
    WhittleVsDp,
    /// Simulated SEPT/LEPT/WSEPT list schedules on identical parallel
    /// machines vs the exact subset-DP flowtime/makespan recursions.
    SeptLeptVsDp,
    /// The `ss-fabric` service-fabric simulator configured as a single
    /// central-queue FIFO M/M/c tier vs the Erlang-C mean-wait formula.
    FabricVsErlangC,
    /// The fabric simulator with a *finite* central queue (capacity `K`)
    /// vs the M/M/c/K blocking probability (the finite-buffer Erlang
    /// family; `K = c` reduces to Erlang-B).
    FabricVsMmck,
}

impl OraclePair {
    /// All pairs, in report order.
    pub const ALL: [OraclePair; 12] = [
        OraclePair::FifoVsPollaczekKhinchine,
        OraclePair::NonpreemptiveVsCobham,
        OraclePair::PreemptiveVsFormula,
        OraclePair::ConservationIdentity,
        OraclePair::GittinsRolloutVsDp,
        OraclePair::LpPrimalVsDual,
        OraclePair::AchievableLpVsCmu,
        OraclePair::KlimovVsExact,
        OraclePair::WhittleVsDp,
        OraclePair::SeptLeptVsDp,
        OraclePair::FabricVsErlangC,
        OraclePair::FabricVsMmck,
    ];

    /// Stable machine-readable key (used in report lines and JSON).
    pub fn key(self) -> &'static str {
        match self {
            OraclePair::FifoVsPollaczekKhinchine => "fifo-vs-pk",
            OraclePair::NonpreemptiveVsCobham => "nonpreemptive-vs-cobham",
            OraclePair::PreemptiveVsFormula => "preemptive-vs-formula",
            OraclePair::ConservationIdentity => "conservation-identity",
            OraclePair::GittinsRolloutVsDp => "gittins-vs-dp",
            OraclePair::LpPrimalVsDual => "lp-primal-vs-dual",
            OraclePair::AchievableLpVsCmu => "achievable-lp-vs-cmu",
            OraclePair::KlimovVsExact => "klimov-vs-exact",
            OraclePair::WhittleVsDp => "whittle-vs-dp",
            OraclePair::SeptLeptVsDp => "sept-lept-vs-dp",
            OraclePair::FabricVsErlangC => "fabric-vs-erlangc",
            OraclePair::FabricVsMmck => "fabric-vs-mmck",
        }
    }

    /// Parse a [`Self::key`] back into a pair (for `verify --pair`).
    pub fn from_key(key: &str) -> Option<OraclePair> {
        OraclePair::ALL.iter().copied().find(|p| p.key() == key)
    }
}

impl fmt::Display for OraclePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Tolerance of one oracle comparison (see the module docs for the rule).
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative slack as a fraction of `|exact|`.
    pub rel: f64,
    /// Absolute slack floor.
    pub abs: f64,
}

impl Tolerance {
    /// Exact-vs-exact comparisons: numerical precision only.
    pub fn exact() -> Self {
        Self {
            rel: 1e-8,
            abs: 1e-6,
        }
    }

    /// Monte-Carlo comparisons: `rel` relative slack on top of the CI term.
    pub fn monte_carlo(rel: f64) -> Self {
        Self { rel, abs: 1e-9 }
    }

    /// Total allowed absolute deviation for a given exact value and CI.
    pub fn allowed(&self, exact: f64, ci_half_width: f64) -> f64 {
        self.abs + self.rel * exact.abs() + ci_half_width
    }
}

/// Outcome of one scenario's oracle comparison.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Did the comparison pass the tolerance gate?
    pub pass: bool,
    /// The simulated (or primal) value.
    pub simulated: f64,
    /// The exact oracle value.
    pub exact: f64,
    /// `|simulated - exact|`.
    pub abs_error: f64,
    /// Confidence-interval half-width of the simulated value (0 when the
    /// comparison is exact-vs-exact).
    pub ci_half_width: f64,
    /// The total allowed deviation the error was checked against.
    pub allowed: f64,
}

/// Apply the tolerance policy to one (simulated, exact) pair.
pub fn check(simulated: f64, exact: f64, ci_half_width: f64, tol: Tolerance) -> Verdict {
    assert!(
        simulated.is_finite() && exact.is_finite() && ci_half_width.is_finite(),
        "oracle comparison received a non-finite value: sim={simulated} exact={exact} ci={ci_half_width}"
    );
    let abs_error = (simulated - exact).abs();
    let allowed = tol.allowed(exact, ci_half_width);
    Verdict {
        pass: abs_error <= allowed,
        simulated,
        exact,
        abs_error,
        ci_half_width,
        allowed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique() {
        let keys: Vec<&str> = OraclePair::ALL.iter().map(|p| p.key()).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }

    #[test]
    fn tolerance_gate_accepts_within_ci() {
        let v = check(1.05, 1.0, 0.1, Tolerance::monte_carlo(0.01));
        assert!(v.pass);
        assert!((v.abs_error - 0.05).abs() < 1e-12);
    }

    #[test]
    fn tolerance_gate_rejects_outside_allowance() {
        let v = check(1.5, 1.0, 0.05, Tolerance::monte_carlo(0.02));
        assert!(!v.pass);
        assert!(v.allowed < 0.5);
    }

    #[test]
    fn exact_tolerance_is_tight() {
        assert!(check(1.0 + 1e-9, 1.0, 0.0, Tolerance::exact()).pass);
        assert!(!check(1.0 + 1e-3, 1.0, 0.0, Tolerance::exact()).pass);
    }

    #[test]
    #[should_panic]
    fn non_finite_values_are_rejected() {
        let _ = check(f64::NAN, 1.0, 0.0, Tolerance::exact());
    }
}

//! Oracle cross-validation harness binary.
//!
//! ```text
//! cargo run --release -p ss-verify --bin verify
//!     # full-budget corpus: report lines + summary + wall-clock
//! cargo run --release -p ss-verify --bin verify -- --check
//!     # fast corpus slice, deterministic output only (no wall-clock);
//!     # exits nonzero on any FAIL — used by the CI determinism job, which
//!     # also diffs this output across SS_THREADS values
//! cargo run --release -p ss-verify --bin verify -- --jobs 4
//!     # run the corpus on a dedicated 4-thread pool
//! cargo run --release -p ss-verify --bin verify -- --json out.json
//!     # also write a JSON summary (timings included; not diff-stable)
//! cargo run --release -p ss-verify --bin verify -- --list
//!     # print the corpus without running it
//! cargo run --release -p ss-verify --bin verify -- --seed 7
//!     # regenerate and run the corpus from another master seed
//! cargo run --release -p ss-verify --bin verify -- --check --pair klimov-vs-exact --pair whittle-vs-dp
//!     # restrict the run (or --list) to the named oracle pairs; scenario
//!     # ids and RNG streams are unchanged by filtering, so a filtered
//!     # report is a strict subset of the full report's lines
//! ```
//!
//! Report lines are bit-identical for any thread count (each replication
//! owns an `RngStreams` stream keyed by `(scenario, rep)` and results are
//! collected in corpus order), so determinism is a hard gate here exactly
//! as in the `sweeps` binary.

use ss_sim::json;
use ss_verify::corpus::generate_corpus;
use ss_verify::oracle::OraclePair;
use ss_verify::run::{render_check_report, run_corpus, summarize, ScenarioReport};
use ss_verify::scenario::Budget;
use ss_verify::DEFAULT_SEED;

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: verify [--check] [--jobs N] [--json PATH] [--seed S] [--list] [--pair KEY]..."
    );
    std::process::exit(1);
}

fn write_json(
    path: &str,
    seed: u64,
    reports: &[ScenarioReport],
    wall_ms: f64,
) -> std::io::Result<()> {
    let (passed, total) = summarize(reports);
    let mut body = String::from("{\n");
    body.push_str("  \"harness\": \"verify\",\n");
    body.push_str(&format!("  \"seed\": {seed},\n"));
    body.push_str(&json::host_env_fields());
    body.push_str(&format!("  \"passed\": {passed},\n"));
    body.push_str(&format!("  \"total\": {total},\n"));
    body.push_str(&format!("  \"wall_ms\": {wall_ms:.3},\n"));
    body.push_str("  \"scenarios\": [\n");
    for (i, r) in reports.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"id\": {}, \"pair\": \"{}\", \"label\": \"{}\", \"pass\": {}, \
             \"simulated\": {:.9}, \"exact\": {:.9}, \"abs_error\": {:.3e}, \
             \"ci_half_width\": {:.3e}, \"allowed\": {:.3e}}}{}\n",
            r.id,
            r.pair.key(),
            json::escape(&r.label),
            r.verdict.pass,
            r.verdict.simulated,
            r.verdict.exact,
            r.verdict.abs_error,
            r.verdict.ci_half_width,
            r.verdict.allowed,
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check_mode = false;
    let mut list_mode = false;
    let mut jobs: Option<usize> = None;
    let mut json_path: Option<String> = None;
    let mut seed = DEFAULT_SEED;
    let mut pairs: Vec<OraclePair> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check_mode = true,
            "--list" => list_mode = true,
            "--pair" => {
                let value = it
                    .next()
                    .unwrap_or_else(|| usage_error("--pair needs an oracle-pair key"));
                match OraclePair::from_key(value) {
                    Some(p) => pairs.push(p),
                    None => usage_error(&format!(
                        "unknown oracle pair {value:?}; known keys: {}",
                        OraclePair::ALL.map(|p| p.key()).join(" ")
                    )),
                }
            }
            "--jobs" => {
                let value = it
                    .next()
                    .unwrap_or_else(|| usage_error("--jobs needs a value"));
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => usage_error(&format!("invalid --jobs value {value:?}")),
                }
            }
            "--json" => match it.next() {
                Some(path) if !path.starts_with("--") => json_path = Some(path.clone()),
                _ => usage_error("--json needs an output path"),
            },
            "--seed" => {
                let value = it
                    .next()
                    .unwrap_or_else(|| usage_error("--seed needs a value"));
                match value.parse::<u64>() {
                    Ok(s) => seed = s,
                    _ => usage_error(&format!("invalid --seed value {value:?}")),
                }
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if check_mode && json_path.is_some() {
        usage_error("--check output must stay deterministic; use --json without --check");
    }

    let mut corpus = generate_corpus(seed);
    if !pairs.is_empty() {
        // Filtering keeps each scenario's corpus id (and therefore its RNG
        // streams), so filtered report lines match the full run's exactly.
        corpus.scenarios.retain(|s| pairs.contains(&s.spec.pair()));
        if corpus.scenarios.is_empty() {
            usage_error("--pair selection matches no scenarios");
        }
    }
    if list_mode {
        for s in &corpus.scenarios {
            println!("#{:<3} {:<24} {}", s.id, s.spec.pair().key(), s.label);
        }
        let distinct: std::collections::BTreeSet<&str> = corpus
            .scenarios
            .iter()
            .map(|s| s.spec.pair().key())
            .collect();
        println!(
            "[{} scenarios across {} oracle pairs]",
            corpus.scenarios.len(),
            distinct.len()
        );
        return;
    }

    let budget = if check_mode {
        Budget::check()
    } else {
        Budget::full()
    };
    let start = std::time::Instant::now();
    let reports = match jobs {
        Some(n) => ss_sim::pool::with_threads(n, || run_corpus(&corpus, &budget)),
        None => run_corpus(&corpus, &budget),
    };
    let wall = start.elapsed();

    // Report lines + summary + machine-readable corpus trailer, rendered by
    // the same function the ss-conform subsystem replays across thread
    // counts (`ss_verify::run::render_check_report`).
    print!("{}", render_check_report(&corpus, &reports));
    let (passed, total) = summarize(&reports);
    if !check_mode {
        // Wall-clock is informational and varies run to run; keep it out of
        // the deterministic --check output that CI diffs across SS_THREADS.
        println!("[corpus finished in {wall:.1?}]");
    }
    if let Some(path) = &json_path {
        if let Err(e) = write_json(path, seed, &reports, wall.as_secs_f64() * 1e3) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(2);
        }
        println!("[wrote {path}]");
    }
    if passed != total {
        eprintln!("verify FAILED: {} oracle checks diverged", total - passed);
        std::process::exit(1);
    }
}

//! Scenario execution: one verdict per scenario, fanned out over the pool.
//!
//! ## Stream-id allocation
//!
//! Replication `rep` of scenario `id` draws from
//! `RngStreams::substream(id, rep)` — disjoint across scenarios, across
//! replications, and from the corpus-generation family
//! ([`crate::corpus::GENERATION_STREAM`]).  Because every replication owns
//! its stream and [`ss_sim::pool::parallel_indexed`] collects results in
//! index order, a corpus run is bit-for-bit identical for any thread count.

use crate::corpus::Corpus;
use crate::oracle::{check, OraclePair, Tolerance, Verdict};
use crate::scenario::{pair_for_mode, BatchMetric, Budget, QueueMode, Scenario, Spec};
use rand::Rng;
use ss_bandits::exact::MultiArmedBandit;
use ss_bandits::restless::{
    simulate_restless, whittle_indices, whittle_relaxation_bound, RestlessPolicy, RestlessProject,
};
use ss_bandits::restless_exact::{restless_optimal_gain, whittle_policy_gain};
use ss_bandits::simulate::{rollout_discounted, GittinsRule};
use ss_batch::exact_exp::{
    exp_batch_instance, list_policy_flowtime, list_policy_makespan, ExpParallelInstance,
};
use ss_batch::parallel::simulate_list_schedule;
use ss_core::job::JobClass;
use ss_fabric::{
    run_fabric, ArrivalProcess, ClassConfig, DisciplineKind, FabricConfig, LbPolicy, RetryPolicy,
    TierConfig,
};
use ss_lp::LinearProgram;
use ss_queueing::achievable_region::region_lp;
use ss_queueing::cmu::cmu_order;
use ss_queueing::cobham::{
    mg1_nonpreemptive_priority, mg1_preemptive_priority, pollaczek_khinchine_wait,
};
use ss_queueing::conservation::conserved_work;
use ss_queueing::klimov::KlimovNetwork;
use ss_queueing::klimov_sim::{exact_mean_workload, simulate_klimov_policy};
use ss_queueing::mg1::{simulate_mg1, Discipline, Mg1Config, Mg1Result};
use ss_sim::pool;
use ss_sim::rng::RngStreams;
use ss_sim::stats::OnlineStats;

/// Result of running one scenario against its oracle.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Corpus index of the scenario.
    pub id: usize,
    /// The scenario's label (copied so reports are self-contained).
    pub label: String,
    /// The oracle pair exercised.
    pub pair: OraclePair,
    /// The tolerance-checked comparison outcome.
    pub verdict: Verdict,
}

/// Per-pair relative tolerances of the Monte-Carlo oracle pairs (the CI
/// half-width is added on top; exact pairs use [`Tolerance::exact`]).
fn tolerance_for(pair: OraclePair) -> Tolerance {
    match pair {
        OraclePair::FifoVsPollaczekKhinchine => Tolerance::monte_carlo(0.10),
        OraclePair::NonpreemptiveVsCobham => Tolerance::monte_carlo(0.10),
        OraclePair::PreemptiveVsFormula => Tolerance::monte_carlo(0.10),
        OraclePair::ConservationIdentity => Tolerance::monte_carlo(0.08),
        OraclePair::GittinsRolloutVsDp => Tolerance::monte_carlo(0.05),
        OraclePair::KlimovVsExact => Tolerance::monte_carlo(0.10),
        OraclePair::WhittleVsDp => Tolerance::monte_carlo(0.06),
        OraclePair::SeptLeptVsDp => Tolerance::monte_carlo(0.05),
        OraclePair::FabricVsErlangC => Tolerance::monte_carlo(0.10),
        OraclePair::FabricVsMmck => Tolerance::monte_carlo(0.10),
        OraclePair::LpPrimalVsDual | OraclePair::AchievableLpVsCmu => Tolerance::exact(),
    }
}

/// Completion-weighted mean wait across classes (the FIFO scalar: under
/// FIFO every class sees the same Pollaczek–Khinchine wait).
fn pooled_wait(res: &Mg1Result) -> f64 {
    let total: u64 = res.completed.iter().sum();
    if total == 0 {
        return 0.0;
    }
    res.mean_wait
        .iter()
        .zip(&res.completed)
        .map(|(w, &n)| w * n as f64)
        .sum::<f64>()
        / total as f64
}

fn run_queue(
    scenario_id: usize,
    classes: &[JobClass],
    order: &[usize],
    mode: QueueMode,
    budget: &Budget,
    streams: &RngStreams,
) -> Verdict {
    let discipline = match mode {
        QueueMode::Fifo => Discipline::Fifo,
        QueueMode::Preemptive => Discipline::PreemptivePriority(order.to_vec()),
        QueueMode::Nonpreemptive | QueueMode::Conservation => {
            Discipline::NonpreemptivePriority(order.to_vec())
        }
    };
    let config = Mg1Config {
        classes: classes.to_vec(),
        discipline,
        horizon: budget.horizon,
        warmup: budget.warmup,
    };
    let values: Vec<f64> = (0..budget.queue_replications)
        .map(|rep| {
            let mut rng = streams.substream(scenario_id as u64, rep as u64);
            let res = simulate_mg1(&config, &mut rng);
            match mode {
                QueueMode::Fifo => pooled_wait(&res),
                QueueMode::Nonpreemptive | QueueMode::Preemptive => res.holding_cost_rate,
                QueueMode::Conservation => classes
                    .iter()
                    .enumerate()
                    .map(|(j, c)| c.load() * res.mean_wait[j])
                    .sum(),
            }
        })
        .collect();
    let stats = OnlineStats::from_slice(&values);
    let exact = match mode {
        QueueMode::Fifo => pollaczek_khinchine_wait(classes),
        QueueMode::Nonpreemptive => mg1_nonpreemptive_priority(classes, order).holding_cost_rate,
        QueueMode::Preemptive => mg1_preemptive_priority(classes, order).holding_cost_rate,
        QueueMode::Conservation => conserved_work(classes),
    };
    let pair = pair_for_mode(mode);
    check(
        stats.mean(),
        exact,
        stats.ci_half_width_t(budget.confidence),
        tolerance_for(pair),
    )
}

fn run_bandit(
    scenario_id: usize,
    projects: &[ss_bandits::project::BanditProject],
    discount: f64,
    budget: &Budget,
    streams: &RngStreams,
) -> Verdict {
    let mab = MultiArmedBandit::new(projects.to_vec(), discount);
    let init = vec![0usize; mab.projects.len()];
    // The DP side of the pair: value iteration on the joint MDP.  The
    // Gittins policy value must coincide with it (index-rule optimality);
    // a disagreement here is an exact-vs-exact failure that no Monte-Carlo
    // slack should mask, so it is folded in as a hard error on `exact`.
    let exact = mab.optimal_value(&init);
    let policy_value = mab.gittins_policy_value(&init);
    // Same threshold the returned verdict would apply, so the gate fires
    // exactly when the exact-vs-exact check would fail.
    let exact_tol = Tolerance::exact();
    if (exact - policy_value).abs() > exact_tol.allowed(exact, 0.0) {
        return check(policy_value, exact, 0.0, exact_tol);
    }
    let policy = GittinsRule::new(&mab);
    let values: Vec<f64> = (0..budget.bandit_replications)
        .map(|rep| {
            let mut rng = streams.substream(scenario_id as u64, rep as u64);
            rollout_discounted(&mab, &policy, &init, &mut rng)
        })
        .collect();
    let stats = OnlineStats::from_slice(&values);
    check(
        stats.mean(),
        exact,
        stats.ci_half_width_t(budget.confidence),
        tolerance_for(OraclePair::GittinsRolloutVsDp),
    )
}

fn run_lp_duality(primal: &LinearProgram, dual: &LinearProgram) -> Verdict {
    let p = primal
        .solve()
        .expect("corpus primal LPs are feasible and bounded by construction");
    let d = dual
        .solve()
        .expect("corpus dual LPs are feasible and bounded by construction");
    check(
        p.objective,
        d.objective,
        0.0,
        tolerance_for(OraclePair::LpPrimalVsDual),
    )
}

/// The achievable-region oracle pair: the production polymatroid LP
/// (`ss_queueing::achievable_region::region_lp`, variables `z_j = ρ_j W_j`,
/// subset bounds from the conservation laws) must attain exactly the
/// holding-cost rate of the cµ priority order evaluated by Cobham's
/// formulas — the LP account of cµ optimality, exercised through the same
/// code path experiment E17 uses.
fn run_achievable_lp(classes: &[JobClass]) -> Verdict {
    let lp = region_lp(classes);
    let order = cmu_order(classes);
    let exact = mg1_nonpreemptive_priority(classes, &order).holding_cost_rate;
    check(
        lp.holding_cost_rate,
        exact,
        0.0,
        tolerance_for(OraclePair::AchievableLpVsCmu),
    )
}

/// The Klimov pair: simulate the network under its Klimov index order;
/// feedback-free networks are an ordinary multiclass M/G/1, so the
/// holding-cost rate is checked two-sided against Cobham; feedback
/// networks check the (priority-invariant) full-chain workload against the
/// exact chain-moment conservation constant.
fn run_klimov(
    scenario_id: usize,
    network: &KlimovNetwork,
    order: &[usize],
    feedback: bool,
    budget: &Budget,
    streams: &RngStreams,
) -> Verdict {
    let values: Vec<f64> = (0..budget.queue_replications)
        .map(|rep| {
            let mut rng = streams.substream(scenario_id as u64, rep as u64);
            let res =
                simulate_klimov_policy(network, order, budget.horizon, budget.warmup, &mut rng);
            if feedback {
                res.mean_workload
            } else {
                res.holding_cost_rate
            }
        })
        .collect();
    let stats = OnlineStats::from_slice(&values);
    let exact = if feedback {
        exact_mean_workload(network)
    } else {
        let classes: Vec<JobClass> = (0..network.num_classes())
            .map(|i| {
                JobClass::new(
                    i,
                    network.arrival_rates[i],
                    network.services[i].clone(),
                    network.holding_costs[i],
                )
            })
            .collect();
        mg1_nonpreemptive_priority(&classes, order).holding_cost_rate
    };
    check(
        stats.mean(),
        exact,
        stats.ci_half_width_t(budget.confidence),
        tolerance_for(OraclePair::KlimovVsExact),
    )
}

/// The Whittle pair: the exact side is the joint-chain evaluation of the
/// very policy being simulated; before simulating, the exact sandwich
/// `policy value <= DP optimum <= relaxation bound` is enforced as a hard
/// exact-vs-exact gate (no Monte-Carlo slack may mask a violation).
fn run_restless(
    scenario_id: usize,
    projects: &[RestlessProject],
    m: usize,
    budget: &Budget,
    streams: &RngStreams,
) -> Verdict {
    let indices: Vec<Vec<f64>> = projects.iter().map(whittle_indices).collect();
    let exact = whittle_policy_gain(projects, m, &indices);
    let optimal = restless_optimal_gain(projects, m);
    let bound = whittle_relaxation_bound(projects, m);
    // The solvers converge to ~1e-9; the gates allow only solver noise.
    let gate = Tolerance {
        rel: 1e-6,
        abs: 1e-5,
    };
    if exact > optimal + gate.allowed(optimal, 0.0) {
        return check(exact, optimal, 0.0, gate);
    }
    if optimal > bound + gate.allowed(bound, 0.0) {
        return check(optimal, bound, 0.0, gate);
    }
    let policy = RestlessPolicy::WhittleIndex(indices);
    let values: Vec<f64> = (0..budget.restless_replications)
        .map(|rep| {
            let mut rng = streams.substream(scenario_id as u64, rep as u64);
            simulate_restless(projects, m, &policy, budget.restless_horizon, &mut rng)
        })
        .collect();
    let stats = OnlineStats::from_slice(&values);
    check(
        stats.mean(),
        exact,
        stats.ci_half_width_t(budget.confidence),
        tolerance_for(OraclePair::WhittleVsDp),
    )
}

/// The fabric pair: the service-fabric DES configured as exactly the model
/// Erlang-C solves — one tier, one class, Poisson arrivals, exponential
/// servers behind a central FIFO queue, no hops, failures or retries —
/// must reproduce the closed-form M/M/c mean queueing delay.  Exercises
/// the whole fabric machinery (calendar, central queue, discipline
/// selection, warmup-clipped accounting) through the public `run_fabric`
/// entry point.
fn run_fabric_erlang(
    scenario_id: usize,
    servers: usize,
    lambda: f64,
    mu: f64,
    budget: &Budget,
    streams: &RngStreams,
) -> Verdict {
    let config = FabricConfig {
        name: format!("mmc-c{servers}"),
        classes: vec![ClassConfig {
            arrivals: ArrivalProcess::Poisson { rate: lambda },
            holding_cost: 1.0,
        }],
        tiers: vec![TierConfig {
            servers,
            queue_capacity: None,
            service: vec![ss_distributions::dyn_dist(
                ss_distributions::Exponential::with_mean(1.0 / mu),
            )],
            discipline: DisciplineKind::Fifo,
            lb: LbPolicy::CentralQueue,
            hop_delay: 0.0,
            failure: None,
            breaker: None,
            slowdown: None,
            outage: None,
        }],
        retry: RetryPolicy::none(),
        warmup: budget.warmup,
        horizon: budget.horizon,
        deadlines: None,
        shedder: None,
        sla_window: None,
    };
    let values: Vec<f64> = (0..budget.queue_replications)
        .map(|rep| {
            let seed = streams
                .substream(scenario_id as u64, rep as u64)
                .gen::<u64>();
            run_fabric(&config, seed).tiers[0].mean_wait
        })
        .collect();
    let stats = OnlineStats::from_slice(&values);
    let exact = ss_queueing::parallel_servers::mmc_mean_wait(servers, lambda, mu);
    check(
        stats.mean(),
        exact,
        stats.ci_half_width_t(budget.confidence),
        tolerance_for(OraclePair::FabricVsErlangC),
    )
}

/// The finite-buffer fabric pair: the same single-tier central-queue
/// configuration as [`run_fabric_erlang`], but with a bounded waiting room
/// (`queue_capacity = Some(queue_cap)`), making the tier exactly an
/// M/M/c/K system with `K = servers + queue_cap`.  By PASTA, the fraction
/// of arrivals dropped at the full tier is the stationary blocking
/// probability `p_K`, which the exact side computes from the truncated
/// birth–death distribution (`ss_queueing::parallel_servers`).  Unlike the
/// Erlang-C pair this one is meaningful in overload (`λ > cµ`), where the
/// committed corpus deliberately places one scenario.
fn run_fabric_mmck(
    scenario_id: usize,
    servers: usize,
    queue_cap: usize,
    lambda: f64,
    mu: f64,
    budget: &Budget,
    streams: &RngStreams,
) -> Verdict {
    let config = FabricConfig {
        name: format!("mmck-c{servers}-k{}", servers + queue_cap),
        classes: vec![ClassConfig {
            arrivals: ArrivalProcess::Poisson { rate: lambda },
            holding_cost: 1.0,
        }],
        tiers: vec![TierConfig {
            servers,
            queue_capacity: Some(queue_cap),
            service: vec![ss_distributions::dyn_dist(
                ss_distributions::Exponential::with_mean(1.0 / mu),
            )],
            discipline: DisciplineKind::Fifo,
            lb: LbPolicy::CentralQueue,
            hop_delay: 0.0,
            failure: None,
            breaker: None,
            slowdown: None,
            outage: None,
        }],
        retry: RetryPolicy::none(),
        warmup: budget.warmup,
        horizon: budget.horizon,
        deadlines: None,
        shedder: None,
        sla_window: None,
    };
    let values: Vec<f64> = (0..budget.queue_replications)
        .map(|rep| {
            let seed = streams
                .substream(scenario_id as u64, rep as u64)
                .gen::<u64>();
            let tier = &run_fabric(&config, seed).tiers[0];
            let offered = tier.served + tier.dropped;
            if offered == 0 {
                0.0
            } else {
                tier.dropped as f64 / offered as f64
            }
        })
        .collect();
    let stats = OnlineStats::from_slice(&values);
    let exact = ss_queueing::parallel_servers::mmck_blocking_probability(
        servers,
        servers + queue_cap,
        lambda,
        mu,
    );
    check(
        stats.mean(),
        exact,
        stats.ci_half_width_t(budget.confidence),
        tolerance_for(OraclePair::FabricVsMmck),
    )
}

/// The SEPT/LEPT pair: Monte-Carlo list-schedule realisations vs the exact
/// subset-DP value of the same list on the same machines.
#[allow(clippy::too_many_arguments)]
fn run_list_schedule(
    scenario_id: usize,
    rates: &[f64],
    weights: &[f64],
    machines: usize,
    order: &[usize],
    metric: BatchMetric,
    budget: &Budget,
    streams: &RngStreams,
) -> Verdict {
    let instance = ExpParallelInstance::weighted(rates.to_vec(), weights.to_vec());
    let batch = exp_batch_instance(&instance);
    let exact = match metric {
        BatchMetric::Flowtime | BatchMetric::WeightedFlowtime => {
            list_policy_flowtime(&instance, order, machines)
        }
        BatchMetric::Makespan => list_policy_makespan(&instance, order, machines),
    };
    let values: Vec<f64> = (0..budget.list_replications)
        .map(|rep| {
            let mut rng = streams.substream(scenario_id as u64, rep as u64);
            let out = simulate_list_schedule(&batch, order, machines, &mut rng);
            match metric {
                BatchMetric::Flowtime => out.total_flowtime,
                BatchMetric::WeightedFlowtime => out.weighted_flowtime,
                BatchMetric::Makespan => out.makespan,
            }
        })
        .collect();
    let stats = OnlineStats::from_slice(&values);
    check(
        stats.mean(),
        exact,
        stats.ci_half_width_t(budget.confidence),
        tolerance_for(OraclePair::SeptLeptVsDp),
    )
}

/// Run one scenario against its oracle.
pub fn run_scenario(s: &Scenario, budget: &Budget, streams: &RngStreams) -> ScenarioReport {
    let verdict = match &s.spec {
        Spec::Queue {
            classes,
            order,
            mode,
        } => run_queue(s.id, classes, order, *mode, budget, streams),
        Spec::Bandit { projects, discount } => {
            run_bandit(s.id, projects, *discount, budget, streams)
        }
        Spec::LpDuality { primal, dual } => run_lp_duality(primal, dual),
        Spec::AchievableLp { classes } => run_achievable_lp(classes),
        Spec::Klimov {
            network,
            order,
            feedback,
        } => run_klimov(s.id, network, order, *feedback, budget, streams),
        Spec::Restless { projects, m } => run_restless(s.id, projects, *m, budget, streams),
        Spec::Fabric {
            servers,
            lambda,
            mu,
        } => run_fabric_erlang(s.id, *servers, *lambda, *mu, budget, streams),
        Spec::FabricFinite {
            servers,
            queue_cap,
            lambda,
            mu,
        } => run_fabric_mmck(s.id, *servers, *queue_cap, *lambda, *mu, budget, streams),
        Spec::ListSchedule {
            rates,
            weights,
            machines,
            order,
            metric,
        } => run_list_schedule(
            s.id, rates, weights, *machines, order, *metric, budget, streams,
        ),
    };
    ScenarioReport {
        id: s.id,
        label: s.label.clone(),
        pair: s.spec.pair(),
        verdict,
    }
}

/// Run the whole corpus, fanned out over the current pool (scenario `i` is
/// index `i`; results come back in corpus order regardless of thread count).
/// Replication streams are derived from the seed the corpus was generated
/// with, so scenarios and streams can never be mismatched.
pub fn run_corpus(corpus: &Corpus, budget: &Budget) -> Vec<ScenarioReport> {
    let streams = RngStreams::new(corpus.seed);
    pool::parallel_indexed(corpus.scenarios.len(), |i| {
        run_scenario(&corpus.scenarios[i], budget, &streams)
    })
}

/// Deterministic single-line rendering of one report (no wall-clock, so CI
/// can diff runs across thread counts byte-for-byte).
pub fn format_report_line(r: &ScenarioReport) -> String {
    format!(
        "#{:<3} {} {:<24} {:<52} sim={:.6} exact={:.6} err={:.3e} ci={:.3e} allow={:.3e}",
        r.id,
        if r.verdict.pass { "PASS" } else { "FAIL" },
        r.pair.key(),
        r.label,
        r.verdict.simulated,
        r.verdict.exact,
        r.verdict.abs_error,
        r.verdict.ci_half_width,
        r.verdict.allowed,
    )
}

/// Summary counts: `(passed, total)`.
pub fn summarize(reports: &[ScenarioReport]) -> (usize, usize) {
    (
        reports.iter().filter(|r| r.verdict.pass).count(),
        reports.len(),
    )
}

/// The full deterministic check report: one line per scenario, the summary
/// line, and the machine-readable [`CorpusStats`](crate::corpus::CorpusStats)
/// trailer.  This is byte-for-byte what `verify --check` prints (the full-
/// budget run appends a wall-clock line on top) and what the `ss-conform`
/// subsystem replays across thread counts, so the binary and the
/// conformance harness can never drift apart.
pub fn render_check_report(corpus: &Corpus, reports: &[ScenarioReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&format_report_line(r));
        out.push('\n');
    }
    let (passed, total) = summarize(reports);
    out.push_str(&format!(
        "verify: {passed}/{total} oracle checks passed (seed {})\n",
        corpus.seed
    ));
    out.push_str(&corpus.stats().trailer());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::generate_corpus;

    #[test]
    fn lp_scenarios_have_zero_duality_gap() {
        let corpus = generate_corpus(11);
        let streams = RngStreams::new(corpus.seed);
        let budget = Budget::check();
        for s in corpus
            .scenarios
            .iter()
            .filter(|s| s.spec.pair() == OraclePair::LpPrimalVsDual)
        {
            let r = run_scenario(s, &budget, &streams);
            assert!(r.verdict.pass, "{}", format_report_line(&r));
            assert!(r.verdict.abs_error < 1e-6);
        }
    }

    #[test]
    fn achievable_lp_matches_cmu_cost() {
        let corpus = generate_corpus(11);
        let streams = RngStreams::new(corpus.seed);
        let budget = Budget::check();
        for s in corpus
            .scenarios
            .iter()
            .filter(|s| s.spec.pair() == OraclePair::AchievableLpVsCmu)
        {
            let r = run_scenario(s, &budget, &streams);
            assert!(r.verdict.pass, "{}", format_report_line(&r));
        }
    }

    #[test]
    fn report_lines_have_no_wall_clock() {
        let corpus = generate_corpus(5);
        let streams = RngStreams::new(corpus.seed);
        let budget = Budget::check();
        let s = corpus
            .scenarios
            .iter()
            .find(|s| s.spec.pair() == OraclePair::LpPrimalVsDual)
            .unwrap();
        let line = format_report_line(&run_scenario(s, &budget, &streams));
        assert!(line.contains("PASS") || line.contains("FAIL"));
        assert!(!line.contains("ms") && !line.contains("wall"));
    }
}

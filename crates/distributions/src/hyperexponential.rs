//! Hyperexponential distribution (probabilistic mixture of exponentials).
//!
//! Hyperexponentials have decreasing hazard rate (DHR) and squared
//! coefficient of variation greater than one; they are the canonical "high
//! variability" family.  Under DHR processing times the preemptive
//! Sevcik/Gittins index strictly beats nonpreemptive WSEPT (experiment E2)
//! and LEPT becomes the right makespan rule on parallel machines.

use crate::traits::{DistKind, ServiceDistribution};
use rand::{Rng, RngCore};

/// Mixture `sum_i p_i * Exp(rate_i)`.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperExponential {
    probs: Vec<f64>,
    rates: Vec<f64>,
}

impl HyperExponential {
    /// Create from branch probabilities (must sum to 1) and branch rates.
    pub fn new(probs: Vec<f64>, rates: Vec<f64>) -> Self {
        assert_eq!(probs.len(), rates.len(), "probs/rates length mismatch");
        assert!(!probs.is_empty(), "need at least one branch");
        let total: f64 = probs.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "probabilities must sum to 1, got {total}"
        );
        assert!(
            probs.iter().all(|&p| p >= 0.0),
            "probabilities must be nonnegative"
        );
        assert!(
            rates.iter().all(|&r| r > 0.0 && r.is_finite()),
            "rates must be positive"
        );
        Self { probs, rates }
    }

    /// Two-branch hyperexponential with the given mean and squared
    /// coefficient of variation `scv > 1`, using balanced means
    /// (`p1/rate1 = p2/rate2`), the standard parameterisation in queueing
    /// studies.
    pub fn with_mean_scv(mean: f64, scv: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        assert!(scv > 1.0, "hyperexponential requires scv > 1");
        let p = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
        let r1 = 2.0 * p / mean;
        let r2 = 2.0 * (1.0 - p) / mean;
        Self::new(vec![p, 1.0 - p], vec![r1, r2])
    }

    /// Branch probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Branch rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }
}

impl ServiceDistribution for HyperExponential {
    fn kind(&self) -> DistKind {
        DistKind::HyperExponential
    }

    fn mean(&self) -> f64 {
        self.probs.iter().zip(&self.rates).map(|(p, r)| p / r).sum()
    }

    fn variance(&self) -> f64 {
        self.second_moment() - self.mean().powi(2)
    }

    fn second_moment(&self) -> f64 {
        self.probs
            .iter()
            .zip(&self.rates)
            .map(|(p, r)| 2.0 * p / (r * r))
            .sum()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.gen::<f64>();
        let mut acc = 0.0;
        let mut idx = self.probs.len() - 1;
        for (i, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u <= acc {
                idx = i;
                break;
            }
        }
        let v: f64 = rng.gen::<f64>();
        -(1.0 - v).ln() / self.rates[idx]
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        1.0 - self
            .probs
            .iter()
            .zip(&self.rates)
            .map(|(p, r)| p * (-r * x).exp())
            .sum::<f64>()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        self.probs
            .iter()
            .zip(&self.rates)
            .map(|(p, r)| p * r * (-r * x).exp())
            .sum()
    }

    fn describe(&self) -> String {
        format!(
            "H{}(mean={:.4}, scv={:.3})",
            self.probs.len(),
            self.mean(),
            self.scv()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::sample_stats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mean_scv_constructor_hits_targets() {
        for &(mean, scv) in &[(1.0, 2.0), (0.5, 4.0), (3.0, 10.0)] {
            let d = HyperExponential::with_mean_scv(mean, scv);
            assert!(
                (d.mean() - mean).abs() < 1e-9,
                "mean {} vs {}",
                d.mean(),
                mean
            );
            assert!((d.scv() - scv).abs() < 1e-6, "scv {} vs {}", d.scv(), scv);
        }
    }

    #[test]
    fn hazard_is_decreasing() {
        let d = HyperExponential::with_mean_scv(1.0, 5.0);
        let hs: Vec<f64> = (0..40).map(|i| d.hazard(i as f64 * 0.2)).collect();
        for w in hs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "hazard must be nonincreasing: {:?}", w);
        }
    }

    #[test]
    fn sampling_matches_moments() {
        let d = HyperExponential::with_mean_scv(2.0, 3.0);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let xs: Vec<f64> = (0..300_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = sample_stats(&xs);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
        assert!((v - 12.0).abs() < 0.6, "var {v} expected 12");
    }

    #[test]
    fn cdf_limits() {
        let d = HyperExponential::new(vec![0.3, 0.7], vec![1.0, 5.0]);
        assert_eq!(d.cdf(0.0), 0.0);
        assert!((d.cdf(1e6) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_probabilities() {
        let _ = HyperExponential::new(vec![0.3, 0.3], vec![1.0, 1.0]);
    }
}

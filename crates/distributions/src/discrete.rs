//! General finite discrete distribution on nonnegative support points.
//!
//! Discrete-state processing times are what the bandit and MDP formulations
//! in §2 of the survey work with; they also let the exact dynamic programs
//! in `ss-batch` enumerate completions exactly.

use crate::traits::{DistKind, ServiceDistribution};
use rand::{Rng, RngCore};

/// `P(X = values[i]) = probs[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteDist {
    values: Vec<f64>,
    probs: Vec<f64>,
    cum: Vec<f64>,
}

impl DiscreteDist {
    /// Create from support points and probabilities (must sum to 1).
    /// Support points are sorted internally; duplicates are merged.
    pub fn new(values: Vec<f64>, probs: Vec<f64>) -> Self {
        assert_eq!(values.len(), probs.len(), "values/probs length mismatch");
        assert!(!values.is_empty(), "need at least one support point");
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "support must be nonnegative"
        );
        assert!(
            probs.iter().all(|p| *p >= -1e-12),
            "probabilities must be nonnegative"
        );
        let total: f64 = probs.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "probabilities must sum to 1, got {total}"
        );

        let mut pairs: Vec<(f64, f64)> = values.into_iter().zip(probs).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(pairs.len());
        for (v, p) in pairs {
            if let Some(last) = merged.last_mut() {
                if (last.0 - v).abs() < 1e-12 {
                    last.1 += p;
                    continue;
                }
            }
            merged.push((v, p));
        }
        let values: Vec<f64> = merged.iter().map(|x| x.0).collect();
        let probs: Vec<f64> = merged.iter().map(|x| x.1.max(0.0)).collect();
        let mut cum = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for &p in &probs {
            acc += p;
            cum.push(acc);
        }
        Self { values, probs, cum }
    }

    /// Uniform distribution over the given support points.
    pub fn uniform_over(values: Vec<f64>) -> Self {
        let n = values.len();
        assert!(n > 0);
        let probs = vec![1.0 / n as f64; n];
        Self::new(values, probs)
    }

    /// Support points (sorted).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Probabilities aligned with [`DiscreteDist::values`].
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }
}

impl ServiceDistribution for DiscreteDist {
    fn kind(&self) -> DistKind {
        DistKind::Discrete
    }

    fn mean(&self) -> f64 {
        self.values
            .iter()
            .zip(&self.probs)
            .map(|(v, p)| v * p)
            .sum()
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        self.values
            .iter()
            .zip(&self.probs)
            .map(|(v, p)| p * (v - m) * (v - m))
            .sum()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.gen::<f64>();
        match self.cum.iter().position(|&c| u <= c) {
            Some(i) => self.values[i],
            None => *self.values.last().unwrap(),
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for (v, p) in self.values.iter().zip(&self.probs) {
            if *v <= x {
                acc += p;
            } else {
                break;
            }
        }
        acc
    }

    fn pdf(&self, _x: f64) -> f64 {
        0.0
    }

    fn mean_residual(&self, a: f64) -> f64 {
        let sa = self.sf(a);
        if sa <= 0.0 {
            return 0.0;
        }
        let num: f64 = self
            .values
            .iter()
            .zip(&self.probs)
            .filter(|(v, _)| **v > a)
            .map(|(v, p)| p * (v - a))
            .sum();
        num / sa
    }

    fn support_upper(&self) -> f64 {
        *self.values.last().unwrap()
    }

    fn describe(&self) -> String {
        format!(
            "Discrete({} points, mean={:.4})",
            self.values.len(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn moments() {
        let d = DiscreteDist::new(vec![1.0, 2.0, 4.0], vec![0.25, 0.5, 0.25]);
        assert!((d.mean() - 2.25).abs() < 1e-12);
        let var = 0.25 * (1.0f64 - 2.25).powi(2)
            + 0.5 * (2.0f64 - 2.25).powi(2)
            + 0.25 * (4.0f64 - 2.25).powi(2);
        assert!((d.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merges_duplicates_and_sorts() {
        let d = DiscreteDist::new(vec![3.0, 1.0, 3.0], vec![0.25, 0.5, 0.25]);
        assert_eq!(d.values(), &[1.0, 3.0]);
        assert_eq!(d.probs(), &[0.5, 0.5]);
    }

    #[test]
    fn cdf_is_right_continuous_step() {
        let d = DiscreteDist::new(vec![1.0, 2.0], vec![0.4, 0.6]);
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(1.0), 0.4);
        assert_eq!(d.cdf(1.5), 0.4);
        assert_eq!(d.cdf(2.0), 1.0);
    }

    #[test]
    fn sampling_frequencies() {
        let d = DiscreteDist::new(vec![1.0, 2.0, 3.0], vec![0.2, 0.3, 0.5]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            let x = d.sample(&mut rng);
            counts[(x as usize) - 1] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.2).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn uniform_over_support() {
        let d = DiscreteDist::uniform_over(vec![2.0, 4.0, 6.0, 8.0]);
        assert!((d.mean() - 5.0).abs() < 1e-12);
    }
}

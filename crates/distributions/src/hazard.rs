//! Hazard-rate monotonicity classification.
//!
//! The SEPT/LEPT optimality results quoted in §1 of the survey require the
//! common processing-time distribution to have a nondecreasing (IHR) or
//! nonincreasing (DHR) hazard-rate function.  This module classifies a
//! distribution numerically on a grid, with a small tolerance so that the
//! constant-hazard exponential is reported as [`HazardClass::Constant`].

use crate::traits::ServiceDistribution;

/// Result of the numeric hazard-monotonicity classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardClass {
    /// Hazard rate is (numerically) constant — the exponential case, where
    /// both the SEPT-flowtime and LEPT-makespan theorems apply.
    Constant,
    /// Increasing hazard rate (new-better-than-used): SEPT is optimal for
    /// expected flowtime on identical parallel machines (Weber 1982).
    Increasing,
    /// Decreasing hazard rate: LEPT is optimal for expected makespan on
    /// identical parallel machines (Weber 1982).
    Decreasing,
    /// Neither monotone direction holds on the inspected grid.
    NonMonotone,
}

/// Classify the hazard rate of `dist` on `(0, horizon]` using `points`
/// equally spaced evaluation points.
///
/// Grid points where the survival function has essentially vanished
/// (`S(x) < 1e-9`) are skipped, because the hazard is numerically unstable
/// there and irrelevant for scheduling decisions.
pub fn classify(dist: &dyn ServiceDistribution, horizon: f64, points: usize) -> HazardClass {
    assert!(
        horizon > 0.0 && points >= 3,
        "need a positive horizon and at least 3 points"
    );
    let rel_tol = 1e-6;
    let mut increases = false;
    let mut decreases = false;
    let mut prev: Option<f64> = None;
    for i in 1..=points {
        let x = horizon * i as f64 / points as f64;
        if dist.sf(x) < 1e-9 {
            break;
        }
        let h = dist.hazard(x);
        if !h.is_finite() {
            break;
        }
        if let Some(p) = prev {
            let scale = p.abs().max(h.abs()).max(1e-12);
            if h > p + rel_tol * scale {
                increases = true;
            } else if h < p - rel_tol * scale {
                decreases = true;
            }
        }
        prev = Some(h);
    }
    match (increases, decreases) {
        (false, false) => HazardClass::Constant,
        (true, false) => HazardClass::Increasing,
        (false, true) => HazardClass::Decreasing,
        (true, true) => HazardClass::NonMonotone,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Erlang, Exponential, HyperExponential, LogNormal, Uniform, Weibull};

    #[test]
    fn exponential_is_constant() {
        let d = Exponential::new(2.0);
        assert_eq!(classify(&d, 5.0, 100), HazardClass::Constant);
    }

    #[test]
    fn erlang_and_uniform_are_ihr() {
        assert_eq!(
            classify(&Erlang::new(3, 1.0), 10.0, 200),
            HazardClass::Increasing
        );
        assert_eq!(
            classify(&Uniform::new(0.0, 2.0), 1.9, 100),
            HazardClass::Increasing
        );
        assert_eq!(
            classify(&Weibull::new(2.0, 1.0), 4.0, 200),
            HazardClass::Increasing
        );
    }

    #[test]
    fn hyperexponential_is_dhr() {
        let d = HyperExponential::with_mean_scv(1.0, 4.0);
        assert_eq!(classify(&d, 8.0, 200), HazardClass::Decreasing);
        assert_eq!(
            classify(&Weibull::new(0.6, 1.0), 4.0, 200),
            HazardClass::Decreasing
        );
    }

    #[test]
    fn lognormal_is_nonmonotone() {
        // Log-normal hazards increase then decrease.
        let d = LogNormal::with_mean_scv(1.0, 1.0);
        assert_eq!(classify(&d, 20.0, 800), HazardClass::NonMonotone);
    }
}

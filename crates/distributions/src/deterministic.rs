//! Deterministic (point-mass) distribution.
//!
//! Deterministic processing times recover the classical deterministic
//! scheduling results (Smith's rule) as a special case of the stochastic
//! model, and are used as the zero-variance anchor in SCV sweeps.

use crate::traits::{DistKind, ServiceDistribution};
use rand::RngCore;

/// Point mass at `value >= 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Create a point mass at `value`.
    pub fn new(value: f64) -> Self {
        assert!(
            value >= 0.0 && value.is_finite(),
            "value must be nonnegative and finite"
        );
        Self { value }
    }

    /// The constant value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl ServiceDistribution for Deterministic {
    fn kind(&self) -> DistKind {
        DistKind::Deterministic
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn variance(&self) -> f64 {
        0.0
    }

    fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
        self.value
    }

    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }

    fn pdf(&self, _x: f64) -> f64 {
        0.0
    }

    fn mean_residual(&self, a: f64) -> f64 {
        (self.value - a).max(0.0)
    }

    fn completion_rate(&self, a: f64, delta: f64) -> f64 {
        if a + delta >= self.value {
            1.0
        } else {
            0.0
        }
    }

    fn support_upper(&self) -> f64 {
        self.value
    }

    fn describe(&self) -> String {
        format!("Det({:.4})", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn basics() {
        let d = Deterministic::new(3.0);
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.scv(), 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng), 3.0);
        assert_eq!(d.cdf(2.999), 0.0);
        assert_eq!(d.cdf(3.0), 1.0);
    }

    #[test]
    fn residual_decreases_linearly() {
        let d = Deterministic::new(5.0);
        assert_eq!(d.mean_residual(0.0), 5.0);
        assert_eq!(d.mean_residual(2.0), 3.0);
        assert_eq!(d.mean_residual(7.0), 0.0);
    }

    #[test]
    fn completion_rate_is_step() {
        let d = Deterministic::new(1.0);
        assert_eq!(d.completion_rate(0.0, 0.5), 0.0);
        assert_eq!(d.completion_rate(0.6, 0.5), 1.0);
    }
}

//! Minimal special-function toolkit (no external dependencies).
//!
//! Only the functions needed by the distribution families in this crate are
//! provided: `ln Γ` (Lanczos), the regularised lower incomplete gamma
//! function (series / continued fraction), `erf`, and the standard normal
//! CDF.  Accuracies are more than sufficient for the simulation and index
//! computations in this workspace (absolute error well below 1e-10 over the
//! ranges exercised).

/// Natural log of the Gamma function, Lanczos approximation (g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients from Numerical Recipes / Lanczos (g=7).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Gamma function.
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Regularised lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape parameter must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
    } else {
        // Continued fraction (Lentz) for the upper function Q, then 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (a * x.ln() - x - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// Error function, Abramowitz & Stegun 7.1.26 with sign handling.
///
/// Maximum absolute error ~1.5e-7, which is ample for the log-normal CDF
/// used only in simulation sanity checks.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse of the standard normal CDF (Acklam's rational approximation).
///
/// Used by the statistics module consumers to build confidence intervals
/// for arbitrary levels; absolute error below 1.2e-9.
pub fn std_normal_inv_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0,1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    let p_high = 1.0 - p_low;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= p_high {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_at_integers_is_factorial() {
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let g = gamma(n as f64 + 1.0);
            assert!((g - f).abs() / f < 1e-10, "Gamma({}) = {}", n + 1, g);
        }
    }

    #[test]
    fn gamma_half() {
        let g = gamma(0.5);
        assert!((g - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn reg_lower_gamma_matches_erlang_cdf() {
        // For integer shape k, P(k, x) = 1 - sum_{n<k} e^-x x^n / n!.
        for k in 1..=6u32 {
            for &x in &[0.1f64, 0.5, 1.0, 2.0, 5.0, 10.0] {
                let mut tail = 0.0;
                let mut term = (-x).exp();
                for n in 0..k {
                    if n > 0 {
                        term *= x / n as f64;
                    }
                    tail += term;
                }
                let exact = 1.0 - tail;
                let got = reg_lower_gamma(k as f64, x);
                assert!((got - exact).abs() < 1e-9, "P({k},{x}): {got} vs {exact}");
            }
        }
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.0] {
            let s = std_normal_cdf(x) + std_normal_cdf(-x);
            assert!((s - 1.0).abs() < 1e-10);
        }
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-8);
    }

    #[test]
    fn inv_cdf_round_trips() {
        for &p in &[0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.975, 0.99] {
            let x = std_normal_inv_cdf(p);
            let back = std_normal_cdf(x);
            assert!((back - p).abs() < 5e-6, "p={p}, x={x}, back={back}");
        }
        assert!((std_normal_inv_cdf(0.975) - 1.959_964).abs() < 1e-4);
    }
}

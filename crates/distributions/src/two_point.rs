//! Two-point distributions.
//!
//! The survey highlights (citing Coffman–Hofri–Weiss 1989) that on two
//! parallel machines with two-point processing times the simple index rules
//! (SEPT/LEPT) are *not* optimal in general; experiment E5 reproduces that
//! counterexample regime, so this family gets first-class support including
//! exact conditional-residual arithmetic.

use crate::traits::{DistKind, ServiceDistribution};
use rand::{Rng, RngCore};

/// `P(X = low) = p`, `P(X = high) = 1 - p`, with `0 <= low < high`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPoint {
    p_low: f64,
    low: f64,
    high: f64,
}

impl TwoPoint {
    /// Create a two-point distribution.
    pub fn new(p_low: f64, low: f64, high: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_low), "p_low must be a probability");
        assert!(
            low >= 0.0 && high > low && high.is_finite(),
            "need 0 <= low < high"
        );
        Self { p_low, low, high }
    }

    /// Probability of the low value.
    pub fn p_low(&self) -> f64 {
        self.p_low
    }

    /// The low support point.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// The high support point.
    pub fn high(&self) -> f64 {
        self.high
    }
}

impl ServiceDistribution for TwoPoint {
    fn kind(&self) -> DistKind {
        DistKind::TwoPoint
    }

    fn mean(&self) -> f64 {
        self.p_low * self.low + (1.0 - self.p_low) * self.high
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        self.p_low * (self.low - m).powi(2) + (1.0 - self.p_low) * (self.high - m).powi(2)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        if rng.gen::<f64>() < self.p_low {
            self.low
        } else {
            self.high
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.low {
            0.0
        } else if x < self.high {
            self.p_low
        } else {
            1.0
        }
    }

    fn pdf(&self, _x: f64) -> f64 {
        0.0
    }

    fn mean_residual(&self, a: f64) -> f64 {
        if a >= self.high {
            0.0
        } else if a >= self.low {
            // Only the high branch survives.
            self.high - a
        } else {
            self.mean() - a
        }
    }

    fn completion_rate(&self, a: f64, delta: f64) -> f64 {
        let sa = self.sf(a);
        if sa <= 0.0 {
            return 1.0;
        }
        ((self.cdf(a + delta) - self.cdf(a)) / sa).clamp(0.0, 1.0)
    }

    fn support_upper(&self) -> f64 {
        self.high
    }

    fn describe(&self) -> String {
        format!(
            "TwoPoint(p={:.3}: {:.3}|{:.3})",
            self.p_low, self.low, self.high
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn moments() {
        let d = TwoPoint::new(0.75, 1.0, 5.0);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        // var = 0.75*(1-2)^2 + 0.25*(5-2)^2 = 0.75 + 2.25 = 3
        assert!((d.variance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_frequencies() {
        let d = TwoPoint::new(0.3, 1.0, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 100_000;
        let lows = (0..n).filter(|_| d.sample(&mut rng) == 1.0).count();
        let frac = lows as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn conditional_residual_after_low_point() {
        let d = TwoPoint::new(0.5, 1.0, 4.0);
        // Before the low point the residual is mean - a.
        assert!((d.mean_residual(0.5) - 2.0).abs() < 1e-12);
        // After surviving the low point the job is surely the long one.
        assert!((d.mean_residual(1.5) - 2.5).abs() < 1e-12);
        assert_eq!(d.mean_residual(4.5), 0.0);
    }

    #[test]
    fn completion_rate_steps() {
        let d = TwoPoint::new(0.5, 1.0, 4.0);
        // Starting fresh, completing within 1 unit happens iff the job is short.
        assert!((d.completion_rate(0.0, 1.0) - 0.5).abs() < 1e-12);
        // Having survived past the short point, no completion before 4.
        assert_eq!(d.completion_rate(2.0, 1.0), 0.0);
        assert_eq!(d.completion_rate(3.5, 1.0), 1.0);
    }

    #[test]
    fn cdf_steps() {
        let d = TwoPoint::new(0.2, 2.0, 3.0);
        assert_eq!(d.cdf(1.9), 0.0);
        assert_eq!(d.cdf(2.0), 0.2);
        assert_eq!(d.cdf(2.9), 0.2);
        assert_eq!(d.cdf(3.0), 1.0);
    }
}

//! Weibull distribution.
//!
//! The Weibull family interpolates between DHR (`shape < 1`), exponential
//! (`shape = 1`) and IHR (`shape > 1`) processing times with a single
//! parameter, which makes it convenient for hazard-monotonicity sweeps in
//! the parallel-machine experiments.

use crate::special::gamma;
use crate::traits::{DistKind, ServiceDistribution};
use rand::{Rng, RngCore};

/// Weibull distribution with `shape` k and `scale` λ:
/// `F(x) = 1 - exp(-(x/λ)^k)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Create from shape `k > 0` and scale `λ > 0`.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && shape.is_finite(), "shape must be positive");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        Self { shape, scale }
    }

    /// Create with the given shape and mean.
    pub fn with_mean(shape: f64, mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        let scale = mean / gamma(1.0 + 1.0 / shape);
        Self::new(shape, scale)
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ServiceDistribution for Weibull {
    fn kind(&self) -> DistKind {
        DistKind::Weibull
    }

    fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }

    fn variance(&self) -> f64 {
        let g2 = gamma(1.0 + 2.0 / self.shape);
        let g1 = gamma(1.0 + 1.0 / self.shape);
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.gen::<f64>();
        self.scale * (-(1.0 - u).ln()).powf(1.0 / self.shape)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }

    fn hazard(&self, x: f64) -> f64 {
        if x <= 0.0 {
            if self.shape < 1.0 {
                f64::INFINITY
            } else if self.shape == 1.0 {
                1.0 / self.scale
            } else {
                0.0
            }
        } else {
            (self.shape / self.scale) * (x / self.scale).powf(self.shape - 1.0)
        }
    }

    fn describe(&self) -> String {
        format!("Weibull(k={:.3}, scale={:.3})", self.shape, self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::sample_stats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn shape_one_is_exponential() {
        let w = Weibull::new(1.0, 2.0);
        let e = crate::Exponential::new(0.5);
        assert!((w.mean() - 2.0).abs() < 1e-9);
        for &x in &[0.1, 1.0, 3.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-9);
        }
    }

    #[test]
    fn with_mean_hits_target() {
        for &k in &[0.5, 1.5, 3.0] {
            let w = Weibull::with_mean(k, 2.5);
            assert!((w.mean() - 2.5).abs() < 1e-9, "shape {k} mean {}", w.mean());
        }
    }

    #[test]
    fn hazard_monotonicity_by_shape() {
        let ihr = Weibull::new(2.0, 1.0);
        let dhr = Weibull::new(0.5, 1.0);
        assert!(ihr.hazard(0.5) < ihr.hazard(1.0));
        assert!(dhr.hazard(0.5) > dhr.hazard(1.0));
    }

    #[test]
    fn sampling_matches_mean() {
        let w = Weibull::new(1.7, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let xs: Vec<f64> = (0..200_000).map(|_| w.sample(&mut rng)).collect();
        let (m, _v) = sample_stats(&xs);
        assert!((m - w.mean()).abs() < 0.02, "mean {m} vs {}", w.mean());
    }
}

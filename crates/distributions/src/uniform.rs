//! Continuous uniform distribution on `[a, b]`.

use crate::traits::{DistKind, ServiceDistribution};
use rand::{Rng, RngCore};

/// Uniform distribution on the interval `[low, high]`, `0 <= low < high`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Create a uniform distribution on `[low, high]`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(
            low >= 0.0 && high > low && high.is_finite(),
            "need 0 <= low < high < inf"
        );
        Self { low, high }
    }

    /// Lower endpoint.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper endpoint.
    pub fn high(&self) -> f64 {
        self.high
    }
}

impl ServiceDistribution for Uniform {
    fn kind(&self) -> DistKind {
        DistKind::Uniform
    }

    fn mean(&self) -> f64 {
        0.5 * (self.low + self.high)
    }

    fn variance(&self) -> f64 {
        let w = self.high - self.low;
        w * w / 12.0
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        rng.gen_range(self.low..self.high)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.low {
            0.0
        } else if x >= self.high {
            1.0
        } else {
            (x - self.low) / (self.high - self.low)
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < self.low || x > self.high {
            0.0
        } else {
            1.0 / (self.high - self.low)
        }
    }

    fn mean_residual(&self, a: f64) -> f64 {
        if a >= self.high {
            0.0
        } else if a <= self.low {
            // P(X > a) = 1, so the residual mean is just E[X] - a.
            self.mean() - a
        } else {
            // Residual of U[a, high] is uniform on [0, high - a] given X > a.
            0.5 * (self.high - a)
        }
    }

    fn support_upper(&self) -> f64 {
        self.high
    }

    fn describe(&self) -> String {
        format!("U[{:.4},{:.4}]", self.low, self.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::sample_stats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn moments() {
        let d = Uniform::new(1.0, 3.0);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert!((d.variance() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_within_support_and_moments() {
        let d = Uniform::new(0.5, 2.5);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let xs: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| (0.5..2.5).contains(&x)));
        let (m, v) = sample_stats(&xs);
        assert!((m - 1.5).abs() < 0.01);
        assert!((v - 4.0 / 12.0).abs() < 0.01);
    }

    #[test]
    fn uniform_is_ihr() {
        // The uniform hazard 1/(high - x) is increasing on the support.
        let d = Uniform::new(0.0, 1.0);
        let h1 = d.hazard(0.1);
        let h2 = d.hazard(0.5);
        let h3 = d.hazard(0.9);
        assert!(h1 < h2 && h2 < h3);
    }

    #[test]
    fn mean_residual_interior() {
        let d = Uniform::new(0.0, 2.0);
        assert!((d.mean_residual(1.0) - 0.5).abs() < 1e-12);
        assert!((d.mean_residual(0.0) - 1.0).abs() < 1e-9);
    }
}

//! Numeric checks of stochastic orderings between distributions.
//!
//! The strongest SEPT result quoted in the survey (Weber–Varaiya–Walrand
//! 1986) only requires the job processing times to be **stochastically
//! ordered**.  These helpers verify, on a grid, whether two distributions
//! are comparable in the usual stochastic order (`<=st`), the hazard-rate
//! order (`<=hr`) and the likelihood-ratio order (`<=lr`), and are used by
//! the instance generators to certify that a generated instance satisfies
//! the hypotheses of the theorem being tested.

use crate::traits::ServiceDistribution;

/// Outcome of a pairwise ordering check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderCheck {
    /// `a` precedes `b` in the checked order (a is stochastically smaller).
    ABeforeB,
    /// `b` precedes `a`.
    BBeforeA,
    /// The two are numerically indistinguishable on the grid.
    Equal,
    /// Not comparable in this order.
    Incomparable,
}

fn grid(horizon: f64, points: usize) -> impl Iterator<Item = f64> {
    (1..=points).map(move |i| horizon * i as f64 / points as f64)
}

fn compare_pointwise<F>(f: F, horizon: f64, points: usize, tol: f64) -> OrderCheck
where
    F: Fn(f64) -> (f64, f64),
{
    let mut a_le_b = true; // first component <= second everywhere
    let mut b_le_a = true;
    for x in grid(horizon, points) {
        let (fa, fb) = f(x);
        if fa > fb + tol {
            a_le_b = false;
        }
        if fb > fa + tol {
            b_le_a = false;
        }
    }
    match (a_le_b, b_le_a) {
        (true, true) => OrderCheck::Equal,
        (true, false) => OrderCheck::ABeforeB,
        (false, true) => OrderCheck::BBeforeA,
        (false, false) => OrderCheck::Incomparable,
    }
}

/// Usual stochastic order: `A <=st B` iff `S_A(x) <= S_B(x)` for all x.
pub fn stochastic_order(
    a: &dyn ServiceDistribution,
    b: &dyn ServiceDistribution,
    horizon: f64,
    points: usize,
) -> OrderCheck {
    compare_pointwise(|x| (a.sf(x), b.sf(x)), horizon, points, 1e-9)
}

/// Hazard-rate order: `A <=hr B` iff `h_A(x) >= h_B(x)` for all x
/// (the smaller variable has the *larger* hazard).
pub fn hazard_rate_order(
    a: &dyn ServiceDistribution,
    b: &dyn ServiceDistribution,
    horizon: f64,
    points: usize,
) -> OrderCheck {
    // Note the swap: larger hazard everywhere means stochastically smaller.
    compare_pointwise(
        |x| {
            let ha = a.hazard(x);
            let hb = b.hazard(x);
            let ha = if ha.is_finite() { ha } else { 1e12 };
            let hb = if hb.is_finite() { hb } else { 1e12 };
            (hb, ha)
        },
        horizon,
        points,
        1e-9,
    )
}

/// Likelihood-ratio order: `A <=lr B` iff the density ratio
/// `f_B(x) / f_A(x)` is nondecreasing in x (checked on the grid, skipping
/// points where either density vanishes).
pub fn likelihood_ratio_order(
    a: &dyn ServiceDistribution,
    b: &dyn ServiceDistribution,
    horizon: f64,
    points: usize,
) -> OrderCheck {
    let mut ratios_ab: Vec<f64> = Vec::new();
    for x in grid(horizon, points) {
        let fa = a.pdf(x);
        let fb = b.pdf(x);
        if fa > 1e-12 && fb > 1e-12 {
            ratios_ab.push(fb / fa);
        }
    }
    if ratios_ab.len() < 3 {
        return OrderCheck::Incomparable;
    }
    let tol = 1e-9;
    let nondecreasing = ratios_ab
        .windows(2)
        .all(|w| w[1] >= w[0] - tol * w[0].abs().max(1.0));
    let nonincreasing = ratios_ab
        .windows(2)
        .all(|w| w[1] <= w[0] + tol * w[0].abs().max(1.0));
    match (nondecreasing, nonincreasing) {
        (true, true) => OrderCheck::Equal,
        (true, false) => OrderCheck::ABeforeB,
        (false, true) => OrderCheck::BBeforeA,
        (false, false) => OrderCheck::Incomparable,
    }
}

/// True if the slice of distributions forms a chain in the usual stochastic
/// order when taken in the given order (each element `<=st` the next).
pub fn is_stochastically_ordered_chain(
    dists: &[&dyn ServiceDistribution],
    horizon: f64,
    points: usize,
) -> bool {
    dists.windows(2).all(|w| {
        matches!(
            stochastic_order(w[0], w[1], horizon, points),
            OrderCheck::ABeforeB | OrderCheck::Equal
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Deterministic, Exponential, Uniform};

    #[test]
    fn exponentials_are_st_ordered_by_rate() {
        let fast = Exponential::new(4.0); // mean 0.25
        let slow = Exponential::new(1.0); // mean 1.0
        assert_eq!(
            stochastic_order(&fast, &slow, 10.0, 200),
            OrderCheck::ABeforeB
        );
        assert_eq!(
            stochastic_order(&slow, &fast, 10.0, 200),
            OrderCheck::BBeforeA
        );
        assert_eq!(
            hazard_rate_order(&fast, &slow, 10.0, 200),
            OrderCheck::ABeforeB
        );
        assert_eq!(
            likelihood_ratio_order(&fast, &slow, 10.0, 200),
            OrderCheck::ABeforeB
        );
    }

    #[test]
    fn identical_distributions_are_equal() {
        let a = Exponential::new(2.0);
        let b = Exponential::new(2.0);
        assert_eq!(stochastic_order(&a, &b, 5.0, 100), OrderCheck::Equal);
    }

    #[test]
    fn crossing_survival_functions_are_incomparable() {
        // Det(1) vs U[0,2]: S_det is 1 before 1 then 0; S_unif crosses it.
        let d = Deterministic::new(1.0);
        let u = Uniform::new(0.0, 2.0);
        assert_eq!(stochastic_order(&d, &u, 2.0, 400), OrderCheck::Incomparable);
    }

    #[test]
    fn chain_detection() {
        let a = Exponential::new(3.0);
        let b = Exponential::new(2.0);
        let c = Exponential::new(1.0);
        let chain: Vec<&dyn ServiceDistribution> = vec![&a, &b, &c];
        assert!(is_stochastically_ordered_chain(&chain, 10.0, 100));
        let broken: Vec<&dyn ServiceDistribution> = vec![&b, &a, &c];
        assert!(!is_stochastically_ordered_chain(&broken, 10.0, 100));
    }
}

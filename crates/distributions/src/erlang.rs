//! Erlang-k distribution (sum of `k` i.i.d. exponentials).
//!
//! Erlang distributions have increasing hazard rate (IHR) and squared
//! coefficient of variation `1/k < 1`; they are the canonical "low
//! variability" processing-time family used when the SEPT flowtime
//! optimality conditions (common IHR distribution) must hold.

use crate::special::reg_lower_gamma;
use crate::traits::{DistKind, ServiceDistribution};
use rand::{Rng, RngCore};

/// Erlang distribution with integer shape `k >= 1` and rate `lambda` per
/// stage (mean `k / lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    shape: u32,
    rate: f64,
}

impl Erlang {
    /// Create from the stage count `shape >= 1` and per-stage rate.
    pub fn new(shape: u32, rate: f64) -> Self {
        assert!(shape >= 1, "shape must be >= 1");
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Self { shape, rate }
    }

    /// Create an Erlang-`shape` with the given overall mean.
    pub fn with_mean(shape: u32, mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        Self::new(shape, shape as f64 / mean)
    }

    /// Number of exponential stages.
    pub fn shape(&self) -> u32 {
        self.shape
    }

    /// Per-stage rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ServiceDistribution for Erlang {
    fn kind(&self) -> DistKind {
        DistKind::Erlang
    }

    fn mean(&self) -> f64 {
        self.shape as f64 / self.rate
    }

    fn variance(&self) -> f64 {
        self.shape as f64 / (self.rate * self.rate)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Sum of k exponentials via product of uniforms (numerically safe
        // for the small k used in scheduling instances).
        let mut prod = 1.0f64;
        for _ in 0..self.shape {
            let u: f64 = rng.gen::<f64>();
            prod *= 1.0 - u;
        }
        -prod.ln() / self.rate
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_lower_gamma(self.shape as f64, self.rate * x)
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let k = self.shape as f64;
        let lx = self.rate * x;
        if x == 0.0 {
            return if self.shape == 1 { self.rate } else { 0.0 };
        }
        // rate^k x^(k-1) e^{-rate x} / (k-1)!
        let ln_fact: f64 = (1..self.shape).map(|i| (i as f64).ln()).sum();
        (k * self.rate.ln() + (k - 1.0) * x.ln() - lx - ln_fact).exp()
    }

    fn describe(&self) -> String {
        format!("Erlang(k={}, rate={:.4})", self.shape, self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::sample_stats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn moments_and_scv() {
        let d = Erlang::new(4, 2.0);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert!((d.variance() - 1.0).abs() < 1e-12);
        assert!((d.scv() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn with_mean_constructor() {
        let d = Erlang::with_mean(3, 6.0);
        assert!((d.mean() - 6.0).abs() < 1e-12);
        assert_eq!(d.shape(), 3);
    }

    #[test]
    fn erlang1_is_exponential() {
        let e = Erlang::new(1, 0.7);
        let x = crate::Exponential::new(0.7);
        for &t in &[0.1, 0.5, 1.0, 3.0] {
            assert!((e.cdf(t) - x.cdf(t)).abs() < 1e-10);
            assert!((e.pdf(t) - x.pdf(t)).abs() < 1e-10);
        }
    }

    #[test]
    fn cdf_pdf_consistency() {
        let d = Erlang::new(3, 1.5);
        let x = 2.0;
        let h = 1e-5;
        let num = (d.cdf(x + h) - d.cdf(x - h)) / (2.0 * h);
        assert!((num - d.pdf(x)).abs() < 1e-5);
    }

    #[test]
    fn sampling_matches_moments() {
        let d = Erlang::new(5, 2.5);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = sample_stats(&xs);
        assert!((m - 2.0).abs() < 0.02, "mean {m}");
        assert!((v - 0.8).abs() < 0.03, "var {v}");
    }

    #[test]
    fn hazard_is_increasing() {
        let d = Erlang::new(4, 1.0);
        let hs: Vec<f64> = (1..40).map(|i| d.hazard(i as f64 * 0.25)).collect();
        for w in hs.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "hazard must be nondecreasing: {:?}", w);
        }
    }
}

//! Processing-time and inter-arrival distributions for stochastic scheduling.
//!
//! Every model in the stochastic-scheduling survey is parameterised by the
//! probability distributions of job processing times (and, for queueing
//! models, inter-arrival times).  The optimality conditions of the classical
//! index policies are stated in terms of distributional structure:
//!
//! * WSEPT only needs the **means** (Rothkopf 1966);
//! * the preemptive Sevcik/Gittins index needs the **hazard rate** as a
//!   function of attained service (Sevcik 1974);
//! * SEPT / LEPT optimality on parallel machines needs **exponentiality**,
//!   **monotone hazard rates** (IHR/DHR) or **stochastic ordering**
//!   (Weber 1982, Weber–Varaiya–Walrand 1986);
//! * queueing formulas (Pollaczek–Khinchine, Cobham) need the first two
//!   **moments**.
//!
//! This crate therefore exposes a single [`ServiceDistribution`] trait that
//! provides moments, sampling, distribution functions, hazard rates and
//! residual-life quantities, together with a collection of concrete families
//! (exponential, deterministic, uniform, Erlang, hyperexponential,
//! two-point, Weibull, log-normal, general discrete, empirical, mixtures)
//! and utilities for classifying hazard-rate monotonicity and checking
//! stochastic orderings numerically.
//!
//! # Example
//!
//! ```
//! use ss_distributions::{Exponential, ServiceDistribution, hazard::HazardClass};
//!
//! let d = Exponential::with_mean(2.0);
//! assert!((d.mean() - 2.0).abs() < 1e-12);
//! assert!((d.scv() - 1.0).abs() < 1e-12);
//! // The exponential hazard rate is constant.
//! assert_eq!(ss_distributions::hazard::classify(&d, 10.0, 200), HazardClass::Constant);
//! ```

pub mod deterministic;
pub mod discrete;
pub mod empirical;
pub mod erlang;
pub mod exponential;
pub mod hazard;
pub mod hyperexponential;
pub mod lognormal;
pub mod mixture;
pub mod moments;
pub mod ordering;
pub mod special;
pub mod traits;
pub mod two_point;
pub mod uniform;
pub mod weibull;

pub use deterministic::Deterministic;
pub use discrete::DiscreteDist;
pub use empirical::Empirical;
pub use erlang::Erlang;
pub use exponential::Exponential;
pub use hyperexponential::HyperExponential;
pub use lognormal::LogNormal;
pub use mixture::Mixture;
pub use traits::{DistKind, ServiceDistribution};
pub use two_point::TwoPoint;
pub use uniform::Uniform;
pub use weibull::Weibull;

/// A boxed, dynamically typed service distribution.
///
/// Scheduling instances routinely mix distribution families (e.g. the
/// Coffman–Hofri–Weiss counterexample mixes two-point jobs of different
/// supports), so most of the workspace stores jobs with `Arc<dyn
/// ServiceDistribution>` handles.
pub type DynDist = std::sync::Arc<dyn ServiceDistribution>;

/// Convenience constructor for a [`DynDist`].
pub fn dyn_dist<D: ServiceDistribution + 'static>(d: D) -> DynDist {
    std::sync::Arc::new(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dyn_dist_round_trip() {
        let d = dyn_dist(Exponential::new(0.5));
        assert!((d.mean() - 2.0).abs() < 1e-12);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let x = d.sample(&mut rng);
        assert!(x >= 0.0);
    }
}

//! The [`ServiceDistribution`] trait: the common interface every
//! processing-time / inter-arrival distribution in the workspace implements.

use rand::RngCore;
use std::fmt;

/// Coarse family tag, used by instance generators and pretty printers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistKind {
    /// Point mass at a single value.
    Deterministic,
    /// Exponential (memoryless).
    Exponential,
    /// Erlang-k (sum of k i.i.d. exponentials); increasing hazard rate.
    Erlang,
    /// Hyperexponential mixture of exponentials; decreasing hazard rate.
    HyperExponential,
    /// Continuous uniform on an interval.
    Uniform,
    /// Two-point discrete distribution.
    TwoPoint,
    /// General finite discrete distribution.
    Discrete,
    /// Weibull.
    Weibull,
    /// Log-normal.
    LogNormal,
    /// Empirical (resampling from observed values).
    Empirical,
    /// Finite mixture of other distributions.
    Mixture,
}

impl fmt::Display for DistKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DistKind::Deterministic => "Deterministic",
            DistKind::Exponential => "Exponential",
            DistKind::Erlang => "Erlang",
            DistKind::HyperExponential => "HyperExponential",
            DistKind::Uniform => "Uniform",
            DistKind::TwoPoint => "TwoPoint",
            DistKind::Discrete => "Discrete",
            DistKind::Weibull => "Weibull",
            DistKind::LogNormal => "LogNormal",
            DistKind::Empirical => "Empirical",
            DistKind::Mixture => "Mixture",
        };
        f.write_str(s)
    }
}

/// A nonnegative random variable modelling a service requirement, processing
/// time, inter-arrival time or switchover time.
///
/// The trait is object-safe so that heterogeneous job sets can be stored as
/// `Arc<dyn ServiceDistribution>`.  Implementations must be cheap to query:
/// the simulators call [`ServiceDistribution::sample`] in their inner loops
/// and the preemptive schedulers call [`ServiceDistribution::hazard`] at
/// every decision epoch.
pub trait ServiceDistribution: Send + Sync + fmt::Debug {
    /// Family tag.
    fn kind(&self) -> DistKind;

    /// First moment `E[X]`.  Must be finite and strictly positive for all
    /// distributions used as processing times.
    fn mean(&self) -> f64;

    /// Variance `Var[X]`.
    fn variance(&self) -> f64;

    /// Draw one sample using the supplied RNG.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Probability density (or, for discrete distributions, an impulse-free
    /// surrogate used only by numeric hazard computations).  Implementations
    /// for discrete distributions may return `0.0`; callers that need
    /// hazards of discrete distributions should use
    /// [`ServiceDistribution::completion_rate`] instead.
    fn pdf(&self, x: f64) -> f64;

    /// Survival function `P(X > x)`.
    fn sf(&self, x: f64) -> f64 {
        (1.0 - self.cdf(x)).max(0.0)
    }

    /// Second raw moment `E[X^2]`.
    fn second_moment(&self) -> f64 {
        let m = self.mean();
        self.variance() + m * m
    }

    /// Squared coefficient of variation `Var[X] / E[X]^2`.
    fn scv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance() / (m * m)
        }
    }

    /// Hazard (failure/completion) rate `h(x) = f(x) / (1 - F(x))`.
    ///
    /// For processing-time distributions this is the instantaneous
    /// completion rate of a job that has received `x` units of service —
    /// the quantity the Sevcik/Gittins preemptive index is built from.
    fn hazard(&self, x: f64) -> f64 {
        let s = self.sf(x);
        if s <= 1e-300 {
            f64::INFINITY
        } else {
            self.pdf(x) / s
        }
    }

    /// Probability that a job with attained service `a` completes within the
    /// next `delta` units of service: `P(X <= a + delta | X > a)`.
    ///
    /// Used by discrete-review preemptive schedulers and by the numeric
    /// Gittins-index construction for general distributions (including
    /// discrete ones where the hazard is not defined).
    fn completion_rate(&self, a: f64, delta: f64) -> f64 {
        let sa = self.sf(a);
        if sa <= 1e-300 {
            return 1.0;
        }
        ((self.cdf(a + delta) - self.cdf(a)) / sa).clamp(0.0, 1.0)
    }

    /// Mean residual processing time `E[X - a | X > a]`, computed by
    /// trapezoidal integration of the conditional survival function unless a
    /// closed form is available.
    fn mean_residual(&self, a: f64) -> f64 {
        let sa = self.sf(a);
        if sa <= 1e-300 {
            return 0.0;
        }
        // Integrate S(x) for x in [a, a + horizon] where horizon is chosen
        // large enough that the tail contribution is negligible for the
        // bounded-moment distributions used in this workspace.
        let horizon = (self.mean() + 8.0 * self.variance().sqrt()).max(self.mean() * 12.0);
        let n = 2048usize;
        let h = horizon / n as f64;
        let mut acc = 0.0;
        let mut prev = self.sf(a);
        for i in 1..=n {
            let x = a + i as f64 * h;
            let cur = self.sf(x);
            acc += 0.5 * (prev + cur) * h;
            prev = cur;
        }
        acc / sa
    }

    /// An upper bound on the support (`f64::INFINITY` when unbounded).
    fn support_upper(&self) -> f64 {
        f64::INFINITY
    }

    /// A human-readable one-line description (family + parameters).
    fn describe(&self) -> String {
        format!("{}(mean={:.4})", self.kind(), self.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Exponential;

    #[test]
    fn default_second_moment_and_scv() {
        let d = Exponential::new(2.0); // mean 0.5, var 0.25
        assert!((d.second_moment() - 0.5).abs() < 1e-12);
        assert!((d.scv() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_mean_residual_memoryless() {
        // For the exponential the mean residual life is the mean at every a.
        let d = Exponential::new(1.0);
        for a in [0.0, 0.5, 2.0, 5.0] {
            let mr = d.mean_residual(a);
            assert!(
                (mr - 1.0).abs() < 2e-2,
                "mean residual at {a} was {mr}, expected ~1"
            );
        }
    }

    #[test]
    fn completion_rate_is_a_probability() {
        let d = Exponential::new(1.0);
        for a in [0.0, 1.0, 3.0] {
            for delta in [0.01, 0.1, 1.0] {
                let p = d.completion_rate(a, delta);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn kind_display() {
        assert_eq!(DistKind::Erlang.to_string(), "Erlang");
        assert_eq!(DistKind::HyperExponential.to_string(), "HyperExponential");
    }
}

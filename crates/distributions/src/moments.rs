//! Small sample-moment helpers used throughout the test suites.

/// Sample mean and (population) variance of a slice.
pub fn sample_stats(xs: &[f64]) -> (f64, f64) {
    assert!(
        !xs.is_empty(),
        "cannot compute statistics of an empty sample"
    );
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var)
}

/// Sample k-th raw moment.
pub fn raw_moment(xs: &[f64], k: u32) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().map(|x| x.powi(k as i32)).sum::<f64>() / xs.len() as f64
}

/// Empirical squared coefficient of variation.
pub fn sample_scv(xs: &[f64]) -> f64 {
    let (m, v) = sample_stats(xs);
    if m == 0.0 {
        0.0
    } else {
        v / (m * m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_simple_sample() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let (m, v) = sample_stats(&xs);
        assert!((m - 2.5).abs() < 1e-12);
        assert!((v - 1.25).abs() < 1e-12);
        assert!((raw_moment(&xs, 2) - 7.5).abs() < 1e-12);
        assert!((sample_scv(&xs) - 1.25 / 6.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_sample_panics() {
        let _ = sample_stats(&[]);
    }
}

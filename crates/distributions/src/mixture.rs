//! Finite mixtures of arbitrary service distributions.

use crate::traits::{DistKind, ServiceDistribution};
use crate::DynDist;
use rand::{Rng, RngCore};

/// Probabilistic mixture of component distributions.
#[derive(Debug, Clone)]
pub struct Mixture {
    weights: Vec<f64>,
    components: Vec<DynDist>,
}

impl Mixture {
    /// Create from weights (must sum to 1) and components.
    pub fn new(weights: Vec<f64>, components: Vec<DynDist>) -> Self {
        assert_eq!(
            weights.len(),
            components.len(),
            "weights/components length mismatch"
        );
        assert!(!weights.is_empty(), "need at least one component");
        let total: f64 = weights.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "weights must sum to 1, got {total}"
        );
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be nonnegative"
        );
        Self {
            weights,
            components,
        }
    }

    /// Mixture weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }
}

impl ServiceDistribution for Mixture {
    fn kind(&self) -> DistKind {
        DistKind::Mixture
    }

    fn mean(&self) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.mean())
            .sum()
    }

    fn variance(&self) -> f64 {
        self.second_moment() - self.mean().powi(2)
    }

    fn second_moment(&self) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.second_moment())
            .sum()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.gen::<f64>();
        let mut acc = 0.0;
        for (w, c) in self.weights.iter().zip(&self.components) {
            acc += w;
            if u <= acc {
                return c.sample(rng);
            }
        }
        self.components.last().unwrap().sample(rng)
    }

    fn cdf(&self, x: f64) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.cdf(x))
            .sum()
    }

    fn pdf(&self, x: f64) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.pdf(x))
            .sum()
    }

    fn support_upper(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.support_upper())
            .fold(0.0, f64::max)
    }

    fn describe(&self) -> String {
        format!(
            "Mixture({} components, mean={:.4})",
            self.components.len(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dyn_dist, Deterministic, Exponential};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mixture_moments() {
        let m = Mixture::new(
            vec![0.5, 0.5],
            vec![
                dyn_dist(Deterministic::new(1.0)),
                dyn_dist(Deterministic::new(3.0)),
            ],
        );
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert!((m.variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixture_of_exponentials_matches_hyperexp() {
        let m = Mixture::new(
            vec![0.3, 0.7],
            vec![
                dyn_dist(Exponential::new(1.0)),
                dyn_dist(Exponential::new(4.0)),
            ],
        );
        let h = crate::HyperExponential::new(vec![0.3, 0.7], vec![1.0, 4.0]);
        for &x in &[0.2, 0.8, 2.0] {
            assert!((m.cdf(x) - h.cdf(x)).abs() < 1e-12);
        }
        assert!((m.mean() - h.mean()).abs() < 1e-12);
        assert!((m.second_moment() - h.second_moment()).abs() < 1e-12);
    }

    #[test]
    fn sampling_stays_reasonable() {
        let m = Mixture::new(
            vec![0.5, 0.5],
            vec![
                dyn_dist(Deterministic::new(2.0)),
                dyn_dist(Exponential::new(1.0)),
            ],
        );
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mean: f64 = (0..100_000).map(|_| m.sample(&mut rng)).sum::<f64>() / 100_000.0;
        assert!((mean - 1.5).abs() < 0.03);
    }
}

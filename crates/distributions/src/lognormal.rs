//! Log-normal distribution (heavy-ish tails, non-monotone hazard).
//!
//! Log-normal processing times violate both IHR and DHR assumptions, which
//! makes them useful for stress-testing heuristics outside the regimes where
//! index policies are provably optimal.

use crate::special::std_normal_cdf;
use crate::traits::{DistKind, ServiceDistribution};
use rand::{Rng, RngCore};

/// Log-normal distribution: `ln X ~ N(mu, sigma^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create from the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
        assert!(mu.is_finite(), "mu must be finite");
        Self { mu, sigma }
    }

    /// Create with the given mean and squared coefficient of variation.
    pub fn with_mean_scv(mean: f64, scv: f64) -> Self {
        assert!(mean > 0.0 && scv > 0.0, "mean and scv must be positive");
        let sigma2 = (1.0 + scv).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        Self::new(mu, sigma2.sqrt())
    }

    /// Location parameter of `ln X`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter of `ln X`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draw a standard normal via Box–Muller using the supplied RNG.
    fn standard_normal(rng: &mut dyn RngCore) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(1e-300);
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl ServiceDistribution for LogNormal {
    fn kind(&self) -> DistKind {
        DistKind::LogNormal
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (self.mu + self.sigma * Self::standard_normal(rng)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn describe(&self) -> String {
        format!("LogNormal(mu={:.3}, sigma={:.3})", self.mu, self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::sample_stats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn with_mean_scv_hits_targets() {
        let d = LogNormal::with_mean_scv(2.0, 1.5);
        assert!((d.mean() - 2.0).abs() < 1e-9);
        assert!((d.scv() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_median() {
        let d = LogNormal::new(0.7, 0.4);
        // The median of a lognormal is exp(mu).
        assert!((d.cdf(0.7f64.exp()) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sampling_matches_mean() {
        let d = LogNormal::with_mean_scv(1.0, 0.8);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let xs: Vec<f64> = (0..300_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = sample_stats(&xs);
        assert!((m - 1.0).abs() < 0.01, "mean {m}");
        assert!((v - 0.8).abs() < 0.05, "var {v}");
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let d = LogNormal::new(0.0, 0.5);
        // Trapezoid integral of pdf over (0, 4] should approximate cdf(4).
        let n = 4000;
        let h = 4.0 / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let a = i as f64 * h;
            let b = a + h;
            acc += 0.5 * (d.pdf(a) + d.pdf(b)) * h;
        }
        assert!((acc - d.cdf(4.0)).abs() < 1e-3);
    }
}

//! Empirical distribution (bootstrap resampling from observed values).
//!
//! Useful to drive the simulators with trace-like workloads: the paper's
//! motivating manufacturing / computer-communication systems would supply
//! measured service times; here we substitute synthetic traces resampled
//! from any generating process (see DESIGN.md, substitution table).

use crate::traits::{DistKind, ServiceDistribution};
use rand::{Rng, RngCore};

/// Resamples uniformly from a fixed set of observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    sorted: Vec<f64>,
    mean: f64,
    var: f64,
}

impl Empirical {
    /// Create from a nonempty set of nonnegative observations.
    pub fn new(mut observations: Vec<f64>) -> Self {
        assert!(!observations.is_empty(), "need at least one observation");
        assert!(
            observations.iter().all(|x| x.is_finite() && *x >= 0.0),
            "observations must be finite and nonnegative"
        );
        observations.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = observations.len() as f64;
        let mean = observations.iter().sum::<f64>() / n;
        let var = observations
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        Self {
            sorted: observations,
            mean,
            var,
        }
    }

    /// Number of observations backing this distribution.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no observations (never happens after construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile (0 <= q <= 1), by lower interpolation.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[idx]
    }
}

impl ServiceDistribution for Empirical {
    fn kind(&self) -> DistKind {
        DistKind::Empirical
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.var
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let i = rng.gen_range(0..self.sorted.len());
        self.sorted[i]
    }

    fn cdf(&self, x: f64) -> f64 {
        // Fraction of observations <= x via binary search (partition_point).
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    fn pdf(&self, _x: f64) -> f64 {
        0.0
    }

    fn support_upper(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    fn describe(&self) -> String {
        format!("Empirical(n={}, mean={:.4})", self.sorted.len(), self.mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn moments_match_observations() {
        let d = Empirical::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((d.mean() - 2.5).abs() < 1e-12);
        assert!((d.variance() - 1.25).abs() < 1e-12);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn cdf_counts_correctly() {
        let d = Empirical::new(vec![1.0, 1.0, 2.0, 5.0]);
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(1.0), 0.5);
        assert_eq!(d.cdf(3.0), 0.75);
        assert_eq!(d.cdf(5.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let d = Empirical::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0), 100.0);
        assert!((d.quantile(0.5) - 50.0).abs() <= 1.0);
    }

    #[test]
    fn samples_come_from_support() {
        let obs = vec![2.0, 7.0, 9.0];
        let d = Empirical::new(obs.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!(obs.contains(&x));
        }
    }
}

//! Exponential distribution — the memoryless workhorse of stochastic
//! scheduling (SEPT/LEPT optimality, M/M/· queues, bandit transition clocks).

use crate::traits::{DistKind, ServiceDistribution};
use rand::{Rng, RngCore};

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create from the rate parameter `lambda > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "rate must be positive and finite"
        );
        Self { rate }
    }

    /// Create from the mean `1/lambda`.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "mean must be positive and finite"
        );
        Self { rate: 1.0 / mean }
    }

    /// The rate parameter `lambda`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ServiceDistribution for Exponential {
    fn kind(&self) -> DistKind {
        DistKind::Exponential
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Inverse transform; 1 - U avoids ln(0).
        let u: f64 = rng.gen::<f64>();
        -(1.0 - u).ln() / self.rate
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn hazard(&self, _x: f64) -> f64 {
        self.rate
    }

    fn mean_residual(&self, _a: f64) -> f64 {
        // Memorylessness: the residual life is again Exp(rate).
        1.0 / self.rate
    }

    fn completion_rate(&self, _a: f64, delta: f64) -> f64 {
        1.0 - (-self.rate * delta).exp()
    }

    fn describe(&self) -> String {
        format!("Exp(rate={:.4})", self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::sample_stats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn moments() {
        let d = Exponential::new(4.0);
        assert!((d.mean() - 0.25).abs() < 1e-12);
        assert!((d.variance() - 0.0625).abs() < 1e-12);
        assert!((d.second_moment() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn cdf_pdf_consistency() {
        let d = Exponential::with_mean(2.0);
        assert!(d.cdf(-1.0).abs() < 1e-12);
        assert!((d.cdf(f64::INFINITY) - 1.0).abs() < 1e-12);
        // Numeric derivative of CDF matches pdf.
        let x = 1.3;
        let h = 1e-6;
        let num = (d.cdf(x + h) - d.cdf(x - h)) / (2.0 * h);
        assert!((num - d.pdf(x)).abs() < 1e-6);
    }

    #[test]
    fn sampling_matches_moments() {
        let d = Exponential::new(0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = sample_stats(&xs);
        assert!((m - 2.0).abs() < 0.03, "sample mean {m}");
        assert!((v - 4.0).abs() < 0.15, "sample var {v}");
    }

    #[test]
    fn memoryless_hazard_constant() {
        let d = Exponential::new(3.0);
        for a in [0.0, 0.1, 1.0, 10.0] {
            assert!((d.hazard(a) - 3.0).abs() < 1e-12);
            assert!((d.mean_residual(a) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_rate() {
        let _ = Exponential::new(0.0);
    }
}

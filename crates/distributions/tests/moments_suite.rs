//! Unit suite for every distribution family: published closed-form
//! mean/variance vs the trait implementations, and Monte-Carlo sample
//! moments (via `moments::sample_stats`) converging to them under seeded
//! `RngStreams`.

use ss_distributions::moments::{sample_scv, sample_stats};
use ss_distributions::{
    dyn_dist, Deterministic, DiscreteDist, DynDist, Empirical, Erlang, Exponential,
    HyperExponential, LogNormal, Mixture, ServiceDistribution, TwoPoint, Uniform, Weibull,
};
use ss_sim::rng::RngStreams;

/// Every family with its closed-form (mean, variance), where one is known
/// independently of the implementation.
fn catalog() -> Vec<(DynDist, f64, f64, &'static str)> {
    vec![
        // Exponential(rate 0.5): mean 2, var 4.
        (dyn_dist(Exponential::new(0.5)), 2.0, 4.0, "Exponential"),
        // Erlang(k=3, rate 2): mean k/λ = 1.5, var k/λ² = 0.75.
        (dyn_dist(Erlang::new(3, 2.0)), 1.5, 0.75, "Erlang"),
        // Deterministic(1.7): var 0.
        (dyn_dist(Deterministic::new(1.7)), 1.7, 0.0, "Deterministic"),
        // Uniform(1, 4): mean 2.5, var (b-a)²/12 = 0.75.
        (dyn_dist(Uniform::new(1.0, 4.0)), 2.5, 0.75, "Uniform"),
        // TwoPoint(p=0.3 at 1, 0.7 at 5): mean 3.8, var 0.3*2.8² + 0.7*1.2².
        (
            dyn_dist(TwoPoint::new(0.3, 1.0, 5.0)),
            3.8,
            0.3 * 2.8f64.powi(2) + 0.7 * 1.2f64.powi(2),
            "TwoPoint",
        ),
        // Discrete over {1, 2, 4} with probs {0.5, 0.25, 0.25}:
        // mean 2, E[X²] = 0.5 + 1 + 4 = 5.5, var 1.5.
        (
            dyn_dist(DiscreteDist::new(
                vec![1.0, 2.0, 4.0],
                vec![0.5, 0.25, 0.25],
            )),
            2.0,
            1.5,
            "Discrete",
        ),
        // Weibull(shape 2, scale 2): mean λΓ(1.5) = √π, var λ²(Γ(2)-Γ(1.5)²).
        (
            dyn_dist(Weibull::new(2.0, 2.0)),
            std::f64::consts::PI.sqrt(),
            4.0 * (1.0 - std::f64::consts::PI / 4.0),
            "Weibull",
        ),
        // LogNormal(mu 0, sigma 0.5): mean e^{σ²/2}, var (e^{σ²}-1)e^{σ²}.
        (
            dyn_dist(LogNormal::new(0.0, 0.5)),
            (0.125f64).exp(),
            ((0.25f64).exp() - 1.0) * (0.25f64).exp(),
            "LogNormal",
        ),
        // HyperExponential via (mean, scv): the constructor's contract.
        (
            dyn_dist(HyperExponential::with_mean_scv(2.0, 3.0)),
            2.0,
            3.0 * 4.0,
            "HyperExponential",
        ),
        // Empirical over a fixed sample: mean/var are the sample moments
        // (population variance).
        (
            dyn_dist(Empirical::new(vec![1.0, 2.0, 3.0, 4.0])),
            2.5,
            1.25,
            "Empirical",
        ),
        // Mixture 0.5 Exp(mean 1) + 0.5 Det(3): mean 2,
        // E[X²] = 0.5*2 + 0.5*9 = 5.5, var 1.5.
        (
            dyn_dist(Mixture::new(
                vec![0.5, 0.5],
                vec![
                    dyn_dist(Exponential::with_mean(1.0)),
                    dyn_dist(Deterministic::new(3.0)),
                ],
            )),
            2.0,
            1.5,
            "Mixture",
        ),
    ]
}

#[test]
fn trait_moments_match_closed_forms() {
    for (d, mean, var, name) in catalog() {
        assert!(
            (d.mean() - mean).abs() < 1e-9,
            "{name}: mean() {} vs closed form {mean}",
            d.mean()
        );
        assert!(
            (d.variance() - var).abs() < 1e-9,
            "{name}: variance() {} vs closed form {var}",
            d.variance()
        );
        // The default-method identities must be consistent with them.
        assert!(
            (d.second_moment() - (var + mean * mean)).abs() < 1e-9,
            "{name}"
        );
        assert!((d.scv() - var / (mean * mean)).abs() < 1e-9, "{name}");
    }
}

#[test]
fn sample_moments_converge_to_trait_moments() {
    let streams = RngStreams::new(0xD157);
    let n = 200_000usize;
    for (stream_id, (d, _, _, name)) in catalog().into_iter().enumerate() {
        let mut rng = streams.stream(stream_id as u64);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x >= 0.0), "{name}: negative sample");
        let (m, v) = sample_stats(&xs);
        // 6-sigma envelope on the sample mean (generous: the seed is fixed,
        // so this is really pinning correct sampling, not luck).
        let se = (d.variance() / n as f64).sqrt();
        assert!(
            // The 1e-9 floor covers zero-variance families, where the only
            // error is float accumulation over the 200k-term sum.
            (m - d.mean()).abs() <= 6.0 * se + 1e-9,
            "{name}: sample mean {m} vs {} (se {se})",
            d.mean()
        );
        let var_tol = 0.05 * d.variance() + 1e-9;
        assert!(
            (v - d.variance()).abs() <= var_tol,
            "{name}: sample var {v} vs {}",
            d.variance()
        );
        if d.mean() > 0.0 {
            assert!(
                (sample_scv(&xs) - d.scv()).abs() <= 0.06 * d.scv() + 1e-9,
                "{name}: sample scv"
            );
        }
    }
}

#[test]
fn sample_mean_error_shrinks_with_sample_size() {
    // Convergence check: the 6-sigma envelope tightens as N grows, and the
    // observed error stays inside it at every N (law of large numbers made
    // executable).  Seeded streams make this deterministic.
    let streams = RngStreams::new(0xC0117);
    for (stream_id, dist) in [
        dyn_dist(Exponential::with_mean(2.0)),
        dyn_dist(Weibull::new(1.5, 1.0)),
        dyn_dist(HyperExponential::with_mean_scv(1.0, 4.0)),
    ]
    .into_iter()
    .enumerate()
    {
        let mut rng = streams.stream(stream_id as u64);
        for n in [1_000usize, 10_000, 100_000] {
            let xs: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
            let (m, _) = sample_stats(&xs);
            let envelope = 6.0 * (dist.variance() / n as f64).sqrt();
            assert!(
                (m - dist.mean()).abs() <= envelope,
                "{}: n={n}: |{m} - {}| > {envelope}",
                dist.describe(),
                dist.mean()
            );
        }
    }
}

#[test]
fn seeded_streams_make_sampling_reproducible() {
    let d = Erlang::new(2, 1.5);
    let a: Vec<f64> = {
        let mut rng = RngStreams::new(42).stream(7);
        (0..100).map(|_| d.sample(&mut rng)).collect()
    };
    let b: Vec<f64> = {
        let mut rng = RngStreams::new(42).stream(7);
        (0..100).map(|_| d.sample(&mut rng)).collect()
    };
    assert_eq!(a, b);
}

#[test]
fn cdf_is_consistent_with_sample_quantiles() {
    // P(X <= median estimate) should be near the empirical fraction; a
    // coarse distribution-function sanity check across families.
    let streams = RngStreams::new(0xCDF);
    for (stream_id, (d, _, _, name)) in catalog().into_iter().enumerate() {
        let mut rng = streams.stream(stream_id as u64);
        let n = 50_000usize;
        let x0 = d.mean(); // probe point
        let below = (0..n).filter(|_| d.sample(&mut rng) <= x0).count();
        let frac = below as f64 / n as f64;
        let cdf = d.cdf(x0);
        assert!(
            (frac - cdf).abs() < 0.02,
            "{name}: empirical P(X<=mean) {frac} vs cdf {cdf}"
        );
    }
}

//! Dense two-phase primal simplex on the full tableau.
//!
//! The implementation follows the standard textbook presentation:
//!
//! 1. every constraint is normalised to have a nonnegative right-hand side;
//! 2. slack variables are added for `<=`, surplus variables for `>=`, and
//!    artificial variables for `>=` and `=` rows;
//! 3. Phase I minimises the sum of artificials; a positive optimum means the
//!    original problem is infeasible;
//! 4. Phase II minimises the user objective starting from the Phase-I basis.
//!
//! Pricing uses Dantzig's most-negative-reduced-cost rule and switches to
//! Bland's smallest-index rule after a pivot budget proportional to the
//! problem size has been consumed, which guarantees termination.

use crate::model::{LinearProgram, Relation};
use crate::solution::{LpError, LpSolution, LpStatus};

const EPS: f64 = 1e-9;

struct Tableau {
    /// rows x cols coefficient matrix (last column is the RHS).
    a: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length cols.
    cost: Vec<f64>,
    /// Current objective value (negated running total).
    obj: f64,
    /// Basis variable per row.
    basis: Vec<usize>,
    rows: usize,
    cols: usize, // number of structural+slack+artificial columns (excludes RHS)
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_val = self.a[row][col];
        // Release-mode check (ss-lint L003): dividing by a ~zero pivot
        // would flood the tableau with inf/NaN and report garbage optima
        // instead of failing at the cause.
        assert!(
            pivot_val.abs() > EPS,
            "simplex pivot on a numerically zero element ({pivot_val:e})"
        );
        // Normalise pivot row.
        for j in 0..=self.cols {
            self.a[row][j] /= pivot_val;
        }
        // Eliminate from other rows.
        for i in 0..self.rows {
            if i != row {
                let factor = self.a[i][col];
                if factor.abs() > EPS {
                    for j in 0..=self.cols {
                        self.a[i][j] -= factor * self.a[row][j];
                    }
                }
            }
        }
        // Eliminate from cost row.
        let factor = self.cost[col];
        if factor.abs() > EPS {
            for j in 0..self.cols {
                self.cost[j] -= factor * self.a[row][j];
            }
            self.obj -= factor * self.a[row][self.cols];
        }
        self.basis[row] = col;
    }

    /// Choose the entering column. Returns `None` at optimality.
    fn entering(&self, bland: bool, allowed: &[bool]) -> Option<usize> {
        if bland {
            (0..self.cols).find(|&j| allowed[j] && self.cost[j] < -EPS)
        } else {
            let mut best = None;
            let mut best_val = -EPS;
            for j in 0..self.cols {
                if allowed[j] && self.cost[j] < best_val {
                    best_val = self.cost[j];
                    best = Some(j);
                }
            }
            best
        }
    }

    /// Ratio test. Returns `None` if the column is unbounded.
    fn leaving(&self, col: usize, bland: bool) -> Option<usize> {
        let mut best_row: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..self.rows {
            let a = self.a[i][col];
            if a > EPS {
                let ratio = self.a[i][self.cols] / a;
                let better = if bland {
                    ratio < best_ratio - EPS
                        || ((ratio - best_ratio).abs() <= EPS
                            && best_row.is_none_or(|r| self.basis[i] < self.basis[r]))
                } else {
                    ratio < best_ratio - EPS
                };
                if better || best_row.is_none() && ratio.is_finite() && ratio < best_ratio {
                    best_ratio = ratio;
                    best_row = Some(i);
                }
            }
        }
        best_row
    }

    /// Run the simplex loop on the current cost row.
    fn optimise(&mut self, allowed: &[bool], max_iters: usize) -> Result<usize, LpError> {
        let mut iters = 0;
        let bland_threshold = max_iters / 2;
        loop {
            let bland = iters >= bland_threshold;
            let Some(col) = self.entering(bland, allowed) else {
                return Ok(iters);
            };
            let Some(row) = self.leaving(col, bland) else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
            iters += 1;
            if iters > max_iters {
                return Err(LpError::IterationLimit);
            }
        }
    }
}

/// Solve `lp` (always as a minimisation; the caller handles orientation).
pub(crate) fn solve(lp: &LinearProgram) -> Result<LpSolution, LpError> {
    let n = lp.num_vars();
    let m = lp.constraints.len();
    // Work with a minimisation objective internally; `LinearProgram::solve`
    // flips the reported value back for maximisation problems.
    let objective: Vec<f64> = if lp.maximize {
        lp.objective.iter().map(|c| -c).collect()
    } else {
        lp.objective.clone()
    };

    // Count auxiliary columns.
    let mut num_slack = 0;
    let mut num_art = 0;
    for c in &lp.constraints {
        // After normalising to b >= 0.
        let flipped = c.rhs < 0.0;
        let rel = effective_relation(c.relation, flipped);
        match rel {
            Relation::Le => num_slack += 1,
            Relation::Ge => {
                num_slack += 1;
                num_art += 1;
            }
            Relation::Eq => num_art += 1,
        }
    }

    let cols = n + num_slack + num_art;
    let mut a = vec![vec![0.0; cols + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut art_cols: Vec<usize> = Vec::with_capacity(num_art);

    let mut slack_idx = n;
    let mut art_idx = n + num_slack;
    for (i, c) in lp.constraints.iter().enumerate() {
        let flipped = c.rhs < 0.0;
        let sign = if flipped { -1.0 } else { 1.0 };
        for j in 0..n {
            a[i][j] = sign * c.coeffs[j];
        }
        a[i][cols] = sign * c.rhs;
        let rel = effective_relation(c.relation, flipped);
        match rel {
            Relation::Le => {
                a[i][slack_idx] = 1.0;
                basis[i] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                a[i][slack_idx] = -1.0;
                slack_idx += 1;
                a[i][art_idx] = 1.0;
                basis[i] = art_idx;
                art_cols.push(art_idx);
                art_idx += 1;
            }
            Relation::Eq => {
                a[i][art_idx] = 1.0;
                basis[i] = art_idx;
                art_cols.push(art_idx);
                art_idx += 1;
            }
        }
    }

    let max_iters = 200 * (cols + m + 10);
    let mut total_iters = 0;

    let mut tab = Tableau {
        a,
        cost: vec![0.0; cols],
        obj: 0.0,
        basis,
        rows: m,
        cols,
    };

    // ---- Phase I ----
    if num_art > 0 {
        // Cost = sum of artificials; express in terms of non-basic variables
        // by subtracting the rows where artificials are basic.
        let mut cost = vec![0.0; cols];
        for &j in &art_cols {
            cost[j] = 1.0;
        }
        let mut obj = 0.0;
        for i in 0..m {
            if art_cols.contains(&tab.basis[i]) {
                for j in 0..cols {
                    cost[j] -= tab.a[i][j];
                }
                obj -= tab.a[i][cols];
            }
        }
        tab.cost = cost;
        tab.obj = obj;
        let allowed = vec![true; cols];
        total_iters += tab.optimise(&allowed, max_iters)?;
        let phase1_value = -tab.obj;
        if phase1_value > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive any remaining artificial variables out of the basis.
        for i in 0..m {
            if art_cols.contains(&tab.basis[i]) {
                // Find a non-artificial column with a nonzero entry to pivot in.
                if let Some(j) = (0..n + num_slack).find(|&j| tab.a[i][j].abs() > EPS) {
                    tab.pivot(i, j);
                } // else: the row is redundant (all-zero); leave the artificial at value 0.
            }
        }
    }

    // ---- Phase II ----
    let mut cost = vec![0.0; cols];
    cost[..n].copy_from_slice(&objective);
    let mut obj = 0.0;
    // Express the cost row in terms of the current basis.
    for i in 0..m {
        let b = tab.basis[i];
        if b < cols && cost[b].abs() > EPS {
            let factor = cost[b];
            for j in 0..cols {
                cost[j] -= factor * tab.a[i][j];
            }
            obj -= factor * tab.a[i][cols];
        }
    }
    tab.cost = cost;
    tab.obj = obj;
    // Artificial columns may not re-enter the basis.
    let mut allowed = vec![true; cols];
    for &j in &art_cols {
        allowed[j] = false;
    }
    total_iters += tab.optimise(&allowed, max_iters)?;

    // Extract the solution.
    let mut x = vec![0.0; n];
    for i in 0..m {
        let b = tab.basis[i];
        if b < n {
            x[b] = tab.a[i][tab.cols];
        }
    }
    let objective: f64 = objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    Ok(LpSolution {
        status: LpStatus::Optimal,
        objective,
        x,
        iterations: total_iters,
    })
}

/// Flip the relation when the row was multiplied by -1 to make the RHS
/// nonnegative.
fn effective_relation(rel: Relation, flipped: bool) -> Relation {
    if !flipped {
        return rel;
    }
    match rel {
        Relation::Le => Relation::Ge,
        Relation::Ge => Relation::Le,
        Relation::Eq => Relation::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearProgram, Relation};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn simple_maximisation() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), 36.
        let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 4.0);
        lp.add_constraint(vec![0.0, 2.0], Relation::Le, 12.0);
        lp.add_constraint(vec![3.0, 2.0], Relation::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 36.0, 1e-8);
        assert_close(sol.x[0], 2.0, 1e-8);
        assert_close(sol.x[1], 6.0, 1e-8);
    }

    #[test]
    fn minimisation_with_ge_constraints() {
        // min 0.12x + 0.15y s.t. 60x + 60y >= 300, 12x + 6y >= 36, 10x + 30y >= 90
        // Classic diet problem; optimum x=3, y=2, cost 0.66.
        let mut lp = LinearProgram::minimize(vec![0.12, 0.15]);
        lp.add_constraint(vec![60.0, 60.0], Relation::Ge, 300.0);
        lp.add_constraint(vec![12.0, 6.0], Relation::Ge, 36.0);
        lp.add_constraint(vec![10.0, 30.0], Relation::Ge, 90.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 0.66, 1e-8);
        assert_close(sol.x[0], 3.0, 1e-7);
        assert_close(sol.x[1], 2.0, 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // min x + 2y + 3z s.t. x + y + z = 1, y + 2z >= 0.5
        // Optimum: put as much as possible on x but need y + 2z >= 0.5:
        // cheapest way to satisfy second constraint per unit is z (ratio 3/2) vs y (2)?
        // With z = 0.25: cost contribution 0.75, x = 0.75 -> total 1.5.
        // With y = 0.5: cost 1.0, x = 0.5 -> total 1.5. Both optimal; value 1.5.
        let mut lp = LinearProgram::minimize(vec![1.0, 2.0, 3.0]);
        lp.add_constraint(vec![1.0, 1.0, 1.0], Relation::Eq, 1.0);
        lp.add_constraint(vec![0.0, 1.0, 2.0], Relation::Ge, 0.5);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 1.5, 1e-8);
        let sum: f64 = sol.x.iter().sum();
        assert_close(sum, 1.0, 1e-8);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.add_constraint(vec![1.0], Relation::Le, 1.0);
        lp.add_constraint(vec![1.0], Relation::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x with only x >= 1: unbounded below.
        let mut lp = LinearProgram::minimize(vec![-1.0]);
        lp.add_constraint(vec![1.0], Relation::Ge, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // x - y <= -1 with min x + y  => y >= x + 1, optimum (0, 1).
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, -1.0], Relation::Le, -1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 1.0, 1e-8);
        assert_close(sol.x[1], 1.0, 1e-8);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classically degenerate LP (Beale's example adapted): ensures the
        // Bland fallback terminates.
        let mut lp = LinearProgram::minimize(vec![-0.75, 150.0, -0.02, 6.0]);
        lp.add_constraint(vec![0.25, -60.0, -0.04, 9.0], Relation::Le, 0.0);
        lp.add_constraint(vec![0.5, -90.0, -0.02, 3.0], Relation::Le, 0.0);
        lp.add_constraint(vec![0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, -0.05, 1e-8);
    }

    #[test]
    fn transportation_like_problem() {
        // 2 sources (supply 20, 30), 3 sinks (demand 10, 25, 15).
        // costs: [[2,3,1],[5,4,8]].  Optimal shipment: s1 sends 15 to d3 and
        // 5 to d1, s2 sends 5 to d1 and 25 to d2, for a total cost of
        // 15*1 + 5*2 + 5*5 + 25*4 = 150.
        let costs = [2.0, 3.0, 1.0, 5.0, 4.0, 8.0];
        let mut lp = LinearProgram::minimize(costs.to_vec());
        // supply rows
        lp.add_constraint(vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0], Relation::Le, 20.0);
        lp.add_constraint(vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0], Relation::Le, 30.0);
        // demand rows
        lp.add_constraint(vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0], Relation::Ge, 10.0);
        lp.add_constraint(vec![0.0, 1.0, 0.0, 0.0, 1.0, 0.0], Relation::Ge, 25.0);
        lp.add_constraint(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0], Relation::Ge, 15.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 150.0, 1e-7);
        assert!(sol.x.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn redundant_equality_rows_are_handled() {
        // x + y = 1 appears twice; still solvable.
        let mut lp = LinearProgram::minimize(vec![1.0, 2.0]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Eq, 1.0);
        lp.add_constraint(vec![2.0, 2.0], Relation::Eq, 2.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 1.0, 1e-8);
        assert_close(sol.x[0], 1.0, 1e-8);
    }
}

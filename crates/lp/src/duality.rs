//! Standard-form LP duality helpers.
//!
//! For the standard-form primal
//!
//! ```text
//! min c·x   s.t.   A x >= b,  x >= 0
//! ```
//!
//! the dual is
//!
//! ```text
//! max b·y   s.t.   Aᵀ y <= c,  y >= 0
//! ```
//!
//! and strong duality makes the pair an exact cross-check of the solver:
//! whenever both are feasible their optima coincide.  The oracle
//! cross-validation corpus (ss-verify) and the simplex test suite build
//! their primal/dual pairs through these constructors so the transposition
//! convention lives in exactly one place.

use crate::model::{LinearProgram, Relation};

fn validate(a: &[Vec<f64>], b: &[f64], c: &[f64]) {
    assert_eq!(a.len(), b.len(), "one RHS entry per constraint row");
    assert!(!c.is_empty(), "need at least one variable");
    for row in a {
        assert_eq!(row.len(), c.len(), "row arity must match the objective");
    }
}

/// The standard-form primal `min c·x  s.t.  A x >= b, x >= 0`.
pub fn standard_primal(a: &[Vec<f64>], b: &[f64], c: &[f64]) -> LinearProgram {
    validate(a, b, c);
    let mut primal = LinearProgram::minimize(c.to_vec());
    for (row, &rhs) in a.iter().zip(b) {
        primal.add_constraint(row.clone(), Relation::Ge, rhs);
    }
    primal
}

/// The dual of [`standard_primal`]: `max b·y  s.t.  Aᵀ y <= c, y >= 0`.
pub fn standard_dual(a: &[Vec<f64>], b: &[f64], c: &[f64]) -> LinearProgram {
    validate(a, b, c);
    let mut dual = LinearProgram::maximize(b.to_vec());
    for (j, &cj) in c.iter().enumerate() {
        let col: Vec<f64> = a.iter().map(|row| row[j]).collect();
        dual.add_constraint(col, Relation::Le, cj);
    }
    dual
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diet_problem_pair_is_tight() {
        let a = vec![vec![60.0, 60.0], vec![12.0, 6.0], vec![10.0, 30.0]];
        let b = vec![300.0, 36.0, 90.0];
        let c = vec![0.12, 0.15];
        let p = standard_primal(&a, &b, &c).solve().unwrap();
        let d = standard_dual(&a, &b, &c).solve().unwrap();
        assert!((p.objective - 0.66).abs() < 1e-8);
        assert!((p.objective - d.objective).abs() < 1e-7);
    }

    #[test]
    fn dual_has_one_variable_per_primal_row() {
        let a = vec![vec![1.0, 2.0, 3.0]];
        let b = vec![1.0];
        let c = vec![1.0, 1.0, 1.0];
        assert_eq!(standard_dual(&a, &b, &c).num_vars(), 1);
        assert_eq!(standard_dual(&a, &b, &c).num_constraints(), 3);
        assert_eq!(standard_primal(&a, &b, &c).num_vars(), 3);
    }

    #[test]
    #[should_panic]
    fn mismatched_arity_is_rejected() {
        let _ = standard_primal(&[vec![1.0]], &[1.0, 2.0], &[1.0]);
    }
}

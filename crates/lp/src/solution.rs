//! Solution and error types for the LP solver.

use std::fmt;

/// Terminal status of a simplex run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below (for minimisation).
    Unbounded,
}

/// Errors returned by [`crate::LinearProgram::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// Phase I ended with a positive artificial objective.
    Infeasible,
    /// Phase II detected an unbounded ray.
    Unbounded,
    /// The iteration limit was exceeded (should not happen with Bland's rule;
    /// kept as a defensive guard).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Status (always [`LpStatus::Optimal`] when returned from `solve`).
    pub status: LpStatus,
    /// Optimal objective value (in the user's orientation).
    pub objective: f64,
    /// Optimal values of the decision variables.
    pub x: Vec<f64>,
    /// Number of simplex pivots performed across both phases.
    pub iterations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(
            LpError::Infeasible.to_string(),
            "linear program is infeasible"
        );
        assert_eq!(
            LpError::Unbounded.to_string(),
            "linear program is unbounded"
        );
    }
}

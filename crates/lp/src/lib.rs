//! # ss-lp — dense two-phase primal simplex
//!
//! A small, dependency-free linear-programming solver used as the substrate
//! for the relaxation bounds that appear in §2 and §3 of the survey:
//!
//! * **Whittle's LP relaxation** of the restless bandit problem — the
//!   requirement that exactly `m` projects be active at each time is relaxed
//!   to an *average* activity constraint, yielding an LP over state-action
//!   frequencies whose value upper-bounds (for rewards) every admissible
//!   policy (`ss-bandits::restless`).
//! * **Achievable-region relaxations** for multiclass parallel-server
//!   scheduling (Glazebrook–Niño-Mora): a relaxed polymatroid LP gives a
//!   lower bound on the attainable holding cost (`ss-queueing::parallel_servers`).
//! * Cross-checks of Klimov's index algorithm against the LP formulation of
//!   the performance region.
//!
//! The solver is a textbook dense tableau implementation: Phase I drives the
//! artificial variables out of the basis, Phase II optimises the user
//! objective; Dantzig pricing with an automatic switch to Bland's rule when
//! cycling is suspected.  Problem sizes in this workspace are tiny by LP
//! standards (at most a few thousand variables), so a dense tableau is the
//! right trade-off of simplicity versus speed.
//!
//! ```
//! use ss_lp::{LinearProgram, Relation};
//!
//! // max x + y  s.t.  x + 2y <= 4,  3x + y <= 6,  x,y >= 0
//! // (encoded as minimisation of -x - y)
//! let mut lp = LinearProgram::minimize(vec![-1.0, -1.0]);
//! lp.add_constraint(vec![1.0, 2.0], Relation::Le, 4.0);
//! lp.add_constraint(vec![3.0, 1.0], Relation::Le, 6.0);
//! let sol = lp.solve().unwrap();
//! assert!((sol.objective + 2.8).abs() < 1e-9); // optimum at (1.6, 1.2)
//! ```

pub mod duality;
pub mod model;
pub mod simplex;
pub mod solution;

pub use duality::{standard_dual, standard_primal};
pub use model::{LinearProgram, Relation};
pub use solution::{LpError, LpSolution, LpStatus};

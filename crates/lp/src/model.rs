//! LP model builder.

use crate::simplex;
use crate::solution::{LpError, LpSolution};

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a · x <= b`
    Le,
    /// `a · x = b`
    Eq,
    /// `a · x >= b`
    Ge,
}

/// A single linear constraint `coeffs · x  rel  rhs`.
#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub coeffs: Vec<f64>,
    pub relation: Relation,
    pub rhs: f64,
}

/// A linear program `min c · x  s.t.  A x {<=,=,>=} b,  x >= 0`.
///
/// All variables are nonnegative; maximisation problems are expressed by
/// negating the objective (see [`LinearProgram::maximize`]).
#[derive(Debug, Clone)]
pub struct LinearProgram {
    pub(crate) objective: Vec<f64>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) maximize: bool,
}

impl LinearProgram {
    /// A minimisation problem with the given objective coefficients.
    pub fn minimize(objective: Vec<f64>) -> Self {
        assert!(
            !objective.is_empty(),
            "objective must have at least one variable"
        );
        Self {
            objective,
            constraints: Vec::new(),
            maximize: false,
        }
    }

    /// A maximisation problem with the given objective coefficients.
    ///
    /// Internally solved as `min -c·x`; the reported objective value is
    /// converted back to the maximisation value.
    pub fn maximize(objective: Vec<f64>) -> Self {
        assert!(
            !objective.is_empty(),
            "objective must have at least one variable"
        );
        Self {
            objective,
            constraints: Vec::new(),
            maximize: true,
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Add the constraint `coeffs · x  rel  rhs`.
    ///
    /// `coeffs` must have exactly [`LinearProgram::num_vars`] entries.
    pub fn add_constraint(&mut self, coeffs: Vec<f64>, relation: Relation, rhs: f64) -> &mut Self {
        assert_eq!(
            coeffs.len(),
            self.objective.len(),
            "constraint arity must match the number of variables"
        );
        assert!(
            coeffs.iter().all(|c| c.is_finite()) && rhs.is_finite(),
            "coefficients must be finite"
        );
        self.constraints.push(Constraint {
            coeffs,
            relation,
            rhs,
        });
        self
    }

    /// Convenience: add an upper bound `x_i <= ub`.
    pub fn add_upper_bound(&mut self, var: usize, ub: f64) -> &mut Self {
        let mut coeffs = vec![0.0; self.num_vars()];
        coeffs[var] = 1.0;
        self.add_constraint(coeffs, Relation::Le, ub)
    }

    /// Solve with the two-phase simplex method.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        let mut sol = simplex::solve(self)?;
        if self.maximize {
            sol.objective = -sol.objective;
        }
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts() {
        let mut lp = LinearProgram::minimize(vec![1.0, 2.0, 3.0]);
        lp.add_constraint(vec![1.0, 1.0, 1.0], Relation::Eq, 1.0);
        lp.add_upper_bound(2, 0.5);
        assert_eq!(lp.num_vars(), 3);
        assert_eq!(lp.num_constraints(), 2);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut lp = LinearProgram::minimize(vec![1.0, 2.0]);
        lp.add_constraint(vec![1.0], Relation::Le, 1.0);
    }

    #[test]
    fn maximize_flips_sign() {
        // max 2x s.t. x <= 3  -> x = 3, objective 6
        let mut lp = LinearProgram::maximize(vec![2.0]);
        lp.add_constraint(vec![1.0], Relation::Le, 3.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-9);
        assert!((sol.x[0] - 3.0).abs() < 1e-9);
    }
}

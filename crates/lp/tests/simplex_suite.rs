//! Simplex test suite on known LPs: degeneracy, unbounded/infeasible
//! detection, and zero duality gap on feasible primal/dual pairs.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ss_lp::duality::{standard_dual, standard_primal};
use ss_lp::{LinearProgram, LpError, Relation};

fn assert_close(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
}

// ---- degeneracy ----

#[test]
fn degenerate_vertex_is_handled() {
    // The vertex (1, 0) is degenerate: three constraints active in 2D.
    // max x + 2y s.t. x <= 1, x + y <= 1, x - y <= 1  ->  (0, 1), value 2.
    let mut lp = LinearProgram::maximize(vec![1.0, 2.0]);
    lp.add_constraint(vec![1.0, 0.0], Relation::Le, 1.0);
    lp.add_constraint(vec![1.0, 1.0], Relation::Le, 1.0);
    lp.add_constraint(vec![1.0, -1.0], Relation::Le, 1.0);
    let sol = lp.solve().unwrap();
    assert_close(sol.objective, 2.0, 1e-8);
    assert_close(sol.x[0], 0.0, 1e-8);
    assert_close(sol.x[1], 1.0, 1e-8);
}

#[test]
fn kuhn_cycling_example_terminates() {
    // A classic cycling-prone LP (Kuhn): Dantzig pricing can loop without
    // an anti-cycling rule; the Bland fallback must terminate at the
    // optimum -2 at x = (2, 0, 2, 0) [minimisation form].
    let mut lp = LinearProgram::minimize(vec![-2.0, -3.0, 1.0, 12.0]);
    lp.add_constraint(vec![-2.0, -9.0, 1.0, 9.0], Relation::Le, 0.0);
    lp.add_constraint(vec![1.0 / 3.0, 1.0, -1.0 / 3.0, -2.0], Relation::Le, 0.0);
    lp.add_constraint(vec![1.0, 0.0, 0.0, 0.0], Relation::Le, 2.0);
    let sol = lp.solve().unwrap();
    assert_close(sol.objective, -2.0, 1e-8);
}

#[test]
fn redundant_and_zero_rows_do_not_break_phase_one() {
    // An equality system with a redundant row and a degenerate RHS.
    let mut lp = LinearProgram::minimize(vec![1.0, 1.0, 1.0]);
    lp.add_constraint(vec![1.0, 1.0, 0.0], Relation::Eq, 1.0);
    lp.add_constraint(vec![2.0, 2.0, 0.0], Relation::Eq, 2.0);
    lp.add_constraint(vec![0.0, 0.0, 1.0], Relation::Ge, 0.0);
    let sol = lp.solve().unwrap();
    assert_close(sol.objective, 1.0, 1e-8);
}

// ---- unbounded / infeasible detection ----

#[test]
fn unbounded_with_ge_constraints_is_detected() {
    // min -x - y with x + y >= 1: the feasible cone is unbounded in the
    // improving direction.
    let mut lp = LinearProgram::minimize(vec![-1.0, -1.0]);
    lp.add_constraint(vec![1.0, 1.0], Relation::Ge, 1.0);
    assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
}

#[test]
fn unbounded_free_direction_with_binding_rows() {
    // x is capped but y is free to grow: max y with x <= 3, x >= 1.
    let mut lp = LinearProgram::maximize(vec![0.0, 1.0]);
    lp.add_constraint(vec![1.0, 0.0], Relation::Le, 3.0);
    lp.add_constraint(vec![1.0, 0.0], Relation::Ge, 1.0);
    assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
}

#[test]
fn bounded_after_adding_the_missing_cap() {
    // The same LP becomes solvable once y is capped: a regression guard
    // that unboundedness detection is not over-eager.
    let mut lp = LinearProgram::maximize(vec![0.0, 1.0]);
    lp.add_constraint(vec![1.0, 0.0], Relation::Le, 3.0);
    lp.add_constraint(vec![1.0, 0.0], Relation::Ge, 1.0);
    lp.add_constraint(vec![0.0, 1.0], Relation::Le, 7.0);
    let sol = lp.solve().unwrap();
    assert_close(sol.objective, 7.0, 1e-8);
}

#[test]
fn infeasible_equality_pair_is_detected() {
    let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
    lp.add_constraint(vec![1.0, 1.0], Relation::Eq, 1.0);
    lp.add_constraint(vec![1.0, 1.0], Relation::Eq, 2.0);
    assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
}

// ---- duality ----

#[test]
fn diet_problem_duality_gap_is_zero() {
    let a = vec![vec![60.0, 60.0], vec![12.0, 6.0], vec![10.0, 30.0]];
    let b = vec![300.0, 36.0, 90.0];
    let c = vec![0.12, 0.15];
    let p = standard_primal(&a, &b, &c).solve().unwrap();
    let d = standard_dual(&a, &b, &c).solve().unwrap();
    assert_close(p.objective, 0.66, 1e-8);
    assert_close(p.objective, d.objective, 1e-7);
}

#[test]
fn random_feasible_pairs_have_zero_duality_gap() {
    // Positive data makes both problems feasible and bounded, so strong
    // duality must hold exactly (up to solver tolerance) on every draw.
    let mut rng = ChaCha8Rng::seed_from_u64(0xD0A1);
    for trial in 0..25 {
        let n = 2 + trial % 5;
        let m = 2 + trial % 4;
        let a: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| rng.gen_range(0.1..1.0)).collect())
            .collect();
        let b: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5..2.0)).collect();
        let c: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..2.5)).collect();
        let p = standard_primal(&a, &b, &c).solve().unwrap();
        let d = standard_dual(&a, &b, &c).solve().unwrap();
        assert!(
            (p.objective - d.objective).abs() < 1e-6,
            "trial {trial}: primal {} vs dual {}",
            p.objective,
            d.objective
        );
        // Weak duality holds along the way (dual never exceeds primal).
        assert!(d.objective <= p.objective + 1e-6);
        // Primal feasibility of the reported point.
        for (row, &rhs) in a.iter().zip(&b) {
            let lhs: f64 = row.iter().zip(&p.x).map(|(aij, xj)| aij * xj).sum();
            assert!(lhs >= rhs - 1e-6);
        }
    }
}

#[test]
fn complementary_slackness_on_a_known_pair() {
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (optimal (2, 6)).
    // Dual (min 4u + 12v + 18w): optimal (0, 5/6, 1).  Check both solves
    // and the complementary-slackness products vanish.
    let mut primal = LinearProgram::maximize(vec![3.0, 5.0]);
    primal.add_constraint(vec![1.0, 0.0], Relation::Le, 4.0);
    primal.add_constraint(vec![0.0, 2.0], Relation::Le, 12.0);
    primal.add_constraint(vec![3.0, 2.0], Relation::Le, 18.0);
    let p = primal.solve().unwrap();

    let mut dual = LinearProgram::minimize(vec![4.0, 12.0, 18.0]);
    dual.add_constraint(vec![1.0, 0.0, 3.0], Relation::Ge, 3.0);
    dual.add_constraint(vec![0.0, 2.0, 2.0], Relation::Ge, 5.0);
    let d = dual.solve().unwrap();

    assert_close(p.objective, 36.0, 1e-8);
    assert_close(d.objective, 36.0, 1e-7);
    // Slack of primal row 1 (x <= 4) is 2 > 0, so the dual price u = 0.
    assert_close(d.x[0], 0.0, 1e-7);
}

//! Fast smoke test of the crate's headline computations: the cµ priority
//! order, and Klimov's index algorithm degenerating to cµ when there is no
//! feedback routing.

use ss_core::job::JobClass;
use ss_distributions::{dyn_dist, Exponential};
use ss_queueing::cmu::cmu_order;
use ss_queueing::klimov::{klimov_indices, KlimovNetwork};

fn classes() -> Vec<JobClass> {
    // cmu indices: 1/1 = 1, 3/0.5 = 6, 2/1.25 = 1.6 -> order [1, 2, 0].
    vec![
        JobClass::new(0, 0.2, dyn_dist(Exponential::with_mean(1.0)), 1.0),
        JobClass::new(1, 0.2, dyn_dist(Exponential::with_mean(0.5)), 3.0),
        JobClass::new(2, 0.2, dyn_dist(Exponential::with_mean(1.25)), 2.0),
    ]
}

#[test]
fn cmu_smoke() {
    assert_eq!(cmu_order(&classes()), vec![1, 2, 0]);
}

#[test]
fn klimov_without_feedback_is_cmu_smoke() {
    let means = [1.0, 0.5, 1.25];
    let costs = [1.0, 3.0, 2.0];
    let services: Vec<_> = means
        .iter()
        .map(|&m| dyn_dist(Exponential::with_mean(m)))
        .collect();
    let network = KlimovNetwork::new(
        vec![0.05; 3],
        services,
        costs.to_vec(),
        vec![vec![0.0; 3]; 3],
    );
    let indices = klimov_indices(&network);
    for j in 0..3 {
        let cmu = costs[j] / means[j];
        assert!(
            (indices[j] - cmu).abs() < 1e-10,
            "class {j}: Klimov {} vs cmu {cmu}",
            indices[j]
        );
    }
}

//! First dedicated test suite for `ss_queueing::klimov`: the index
//! computation pinned against a fully hand-worked 2-class feedback example,
//! plus the oracle-grade simulator (`ss_queueing::klimov_sim`) checked
//! against the exact indices and the workload conservation constant.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ss_distributions::{dyn_dist, Exponential};
use ss_queueing::klimov::{klimov_indices, klimov_order, simulate_klimov, KlimovNetwork};
use ss_queueing::klimov_sim::{exact_mean_workload, klimov_policy_replications};

/// The hand-worked network: class 0 (β₀ = 2, c₀ = 3) feeds back into
/// class 1 (β₁ = 1, c₁ = 5) with probability 1/2; class 1 always leaves.
///
/// Klimov's largest-index-first recursion by hand:
///
/// * round 1, candidate {1}: `T₁ = β₁ = 1`, `E₁ = 0` (leaves only), index
///   `c₁/T₁ = 5`;
/// * round 1, candidate {0}: `T₀ = β₀ = 2`, `E₀ = p₀₁ c₁ = 2.5`, index
///   `(c₀ − E₀)/T₀ = (3 − 2.5)/2 = 0.25` — so class 1 is assigned first
///   with index 5;
/// * round 2, candidate {0, 1}: `T₀ = β₀ + p₀₁ T₁ = 2.5`, `E₀ = 0`, index
///   `c₀/T₀ = 3/2.5 = 1.2`.
///
/// Hence `klimov_indices = [1.2, 5.0]` and the order is `[1, 0]`.
fn hand_worked_network() -> KlimovNetwork {
    KlimovNetwork::new(
        vec![0.15, 0.1],
        vec![
            dyn_dist(Exponential::with_mean(2.0)),
            dyn_dist(Exponential::with_mean(1.0)),
        ],
        vec![3.0, 5.0],
        vec![vec![0.0, 0.5], vec![0.0, 0.0]],
    )
}

#[test]
fn indices_match_the_hand_worked_two_class_example() {
    let net = hand_worked_network();
    let idx = klimov_indices(&net);
    assert!(
        (idx[0] - 1.2).abs() < 1e-9,
        "class 0 index {} != 1.2",
        idx[0]
    );
    assert!(
        (idx[1] - 5.0).abs() < 1e-9,
        "class 1 index {} != 5.0",
        idx[1]
    );
    assert_eq!(klimov_order(&net), vec![1, 0]);
}

#[test]
fn hand_worked_network_traffic_equations() {
    let net = hand_worked_network();
    let gamma = net.effective_arrival_rates();
    assert!((gamma[0] - 0.15).abs() < 1e-12);
    assert!((gamma[1] - (0.1 + 0.5 * 0.15)).abs() < 1e-12);
    let rho = net.total_load();
    assert!((rho - (0.15 * 2.0 + 0.175 * 1.0)).abs() < 1e-12);
    assert!(rho < 1.0);
}

#[test]
fn without_feedback_the_indices_are_cmu() {
    let net = KlimovNetwork::new(
        vec![0.2, 0.25],
        vec![
            dyn_dist(Exponential::with_mean(2.0)),
            dyn_dist(Exponential::with_mean(0.4)),
        ],
        vec![3.0, 1.0],
        vec![vec![0.0; 2]; 2],
    );
    let idx = klimov_indices(&net);
    assert!((idx[0] - 3.0 / 2.0).abs() < 1e-9);
    assert!((idx[1] - 1.0 / 0.4).abs() < 1e-9);
    assert_eq!(klimov_order(&net), vec![1, 0]);
}

#[test]
fn klimov_order_beats_the_reversed_order_in_simulation() {
    // The exact indices say [1, 0] is optimal among static priority
    // orders; both simulators must agree within Monte-Carlo noise.
    let net = hand_worked_network();
    let best = klimov_order(&net);
    let reversed: Vec<usize> = best.iter().rev().copied().collect();
    let mean_cost = |order: &[usize]| {
        let rs = klimov_policy_replications(&net, order, 60_000.0, 2_000.0, 4, 21);
        rs.iter().map(|r| r.holding_cost_rate).sum::<f64>() / rs.len() as f64
    };
    let (good, bad) = (mean_cost(&best), mean_cost(&reversed));
    assert!(
        good <= bad * 1.02,
        "Klimov order cost {good} should not exceed the reversed order's {bad}"
    );
    // The classic queue-length simulator agrees on the ranking.
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    let classic_good = simulate_klimov(&net, &best, 60_000.0, 2_000.0, &mut rng).holding_cost_rate;
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    let classic_bad =
        simulate_klimov(&net, &reversed, 60_000.0, 2_000.0, &mut rng).holding_cost_rate;
    assert!(classic_good <= classic_bad * 1.02);
}

#[test]
fn simulated_workload_matches_the_conservation_constant() {
    // Chain moments by hand for the 2-class example: B₁ = S₁ so
    // E[B₁] = 1, E[B₁²] = 2 (exponential); B₀ = S₀ + Bernoulli(½)·B₁ so
    // E[B₀] = 2 + ½·1 = 2.5 and
    // E[B₀²] = E[S₀²] + 2 E[S₀] ½ E[B₁] + ½ E[B₁²] = 8 + 2 + 1 = 11.
    // E[V] = (α₀ E[B₀²] + α₁ E[B₁²]) / (2 (1 − ρ))
    //      = (0.15·11 + 0.1·2) / (2·0.525) = 1.85/1.05.
    let net = hand_worked_network();
    let exact = exact_mean_workload(&net);
    assert!(
        (exact - 1.85 / 1.05).abs() < 1e-12,
        "exact workload {exact}"
    );
    let rs = klimov_policy_replications(&net, &klimov_order(&net), 80_000.0, 2_000.0, 4, 9);
    let sim = rs.iter().map(|r| r.mean_workload).sum::<f64>() / rs.len() as f64;
    assert!(
        (sim - exact).abs() / exact < 0.08,
        "simulated workload {sim} vs exact {exact}"
    );
}

//! Crate-private sampling helpers shared by the event-driven simulators.

use rand::{Rng, RngCore};

/// Sample an `Exp(rate)` inter-event time by inversion.
pub(crate) fn sample_exp(rng: &mut dyn RngCore, rate: f64) -> f64 {
    let u: f64 = rng.gen::<f64>();
    -(1.0 - u).ln() / rate
}

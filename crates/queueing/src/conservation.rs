//! Conservation laws and the achievable performance region
//! (Coffman–Mitrani 1980, Federgruen–Groenevelt 1988, Shanthikumar–Yao 1992,
//! Bertsimas–Niño-Mora 1996).
//!
//! For the multiclass M/G/1 queue under *any* nonpreemptive work-conserving
//! discipline the weighted waiting times satisfy the work-conservation
//! identity
//!
//! ```text
//! Σ_j ρ_j W_j  =  ρ W0 / (1 - ρ)          (a constant)
//! ```
//!
//! and, more generally, the vector `(ρ_1 W_1, …, ρ_N W_N)` ranges over a
//! polymatroid whose vertices are exactly the static priority rules.  The
//! cµ-rule is therefore the solution of a linear program over that
//! polytope — the "achievable region" account of its optimality that the
//! survey describes.  This module exposes the identity, the per-subset
//! lower bounds defining the polymatroid, and helpers used by the tests and
//! the experiment harness to verify both numerically.

use crate::cobham::{mean_residual_work, mg1_nonpreemptive_priority, total_load};
use ss_core::job::JobClass;

/// The conserved quantity `Σ_j ρ_j W_j` implied by work conservation.
pub fn conserved_work(classes: &[JobClass]) -> f64 {
    let rho = total_load(classes);
    assert!(rho < 1.0, "unstable load {rho}");
    rho * mean_residual_work(classes) / (1.0 - rho)
}

/// Evaluate `Σ_j ρ_j W_j` for a particular static priority order using the
/// exact Cobham waiting times; by the conservation law this should not
/// depend on the order.
pub fn weighted_wait_sum(classes: &[JobClass], priority_order: &[usize]) -> f64 {
    let means = mg1_nonpreemptive_priority(classes, priority_order);
    classes
        .iter()
        .enumerate()
        .map(|(j, c)| c.load() * means.wait[j])
        .sum()
}

/// The polymatroid lower bound for a subset `s` of classes: any
/// nonpreemptive work-conserving discipline satisfies
/// `Σ_{j∈s} ρ_j W_j >= b(s)`, where `b(s)` is the smallest achievable value
/// — attained by giving the classes of `s` absolute (highest) priority so
/// that their waits are as small as work conservation permits.
/// Returns `b(s)`.
pub fn subset_lower_bound(classes: &[JobClass], subset: &[usize]) -> f64 {
    let in_subset = |j: usize| subset.contains(&j);
    // Priority order: the subset classes first, everything else after.
    let mut order: Vec<usize> = subset.to_vec();
    order.extend((0..classes.len()).filter(|&j| !in_subset(j)));
    let means = mg1_nonpreemptive_priority(classes, &order);
    subset
        .iter()
        .map(|&j| classes[j].load() * means.wait[j])
        .sum()
}

/// Check that a vector of per-class mean waits is (approximately) inside
/// the achievable region: every subset lower bound holds and the full-set
/// identity holds with equality.  Intended for small numbers of classes.
pub fn is_achievable(classes: &[JobClass], waits: &[f64], tolerance: f64) -> bool {
    assert_eq!(waits.len(), classes.len());
    let n = classes.len();
    assert!(n <= 12);
    // Full-set equality.
    let total: f64 = classes
        .iter()
        .enumerate()
        .map(|(j, c)| c.load() * waits[j])
        .sum();
    if (total - conserved_work(classes)).abs() > tolerance * conserved_work(classes).max(1.0) {
        return false;
    }
    // Subset inequalities.
    for mask in 1u32..(1 << n) {
        let subset: Vec<usize> = (0..n).filter(|&j| mask & (1 << j) != 0).collect();
        if subset.len() == n {
            continue;
        }
        let lhs: f64 = subset.iter().map(|&j| classes[j].load() * waits[j]).sum();
        let rhs = subset_lower_bound(classes, &subset);
        if lhs < rhs - tolerance * rhs.abs().max(1.0) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmu::cmu_order;
    use ss_distributions::{dyn_dist, Erlang, Exponential, HyperExponential};

    fn classes_3() -> Vec<JobClass> {
        vec![
            JobClass::new(0, 0.2, dyn_dist(Exponential::with_mean(1.0)), 1.0),
            JobClass::new(1, 0.25, dyn_dist(Erlang::with_mean(3, 0.8)), 3.0),
            JobClass::new(
                2,
                0.1,
                dyn_dist(HyperExponential::with_mean_scv(1.5, 4.0)),
                2.0,
            ),
        ]
    }

    #[test]
    fn conservation_identity_holds_for_every_priority_order() {
        let classes = classes_3();
        let target = conserved_work(&classes);
        let orders: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        for order in orders {
            let s = weighted_wait_sum(&classes, &order);
            assert!(
                (s - target).abs() / target < 1e-9,
                "order {order:?}: {s} vs conserved {target}"
            );
        }
    }

    #[test]
    fn priority_orders_lie_in_the_achievable_region() {
        let classes = classes_3();
        for order in [[0usize, 1, 2], [2, 1, 0], [1, 0, 2]] {
            let waits = mg1_nonpreemptive_priority(&classes, &order).wait;
            assert!(
                is_achievable(&classes, &waits, 1e-6),
                "order {order:?} must be achievable"
            );
        }
    }

    #[test]
    fn subset_bounds_are_tight_for_matching_priority() {
        // Giving a subset top priority attains its own bound; any other
        // order can only increase the subset's weighted waits.
        let classes = classes_3();
        let subset = vec![0usize, 2];
        let bound = subset_lower_bound(&classes, &subset);
        let order = vec![0usize, 2, 1];
        let waits = mg1_nonpreemptive_priority(&classes, &order).wait;
        let value: f64 = subset.iter().map(|&j| classes[j].load() * waits[j]).sum();
        assert!((value - bound).abs() / bound < 1e-9);
        let worst_order = vec![1usize, 0, 2];
        let worst = mg1_nonpreemptive_priority(&classes, &worst_order).wait;
        let worst_value: f64 = subset.iter().map(|&j| classes[j].load() * worst[j]).sum();
        assert!(worst_value >= bound - 1e-12);
    }

    #[test]
    fn infeasible_vector_is_rejected() {
        let classes = classes_3();
        // Uniformly tiny waits violate the conservation identity.
        let waits = vec![0.01; 3];
        assert!(!is_achievable(&classes, &waits, 1e-6));
    }

    #[test]
    fn cmu_vertex_minimises_cost_over_sampled_vertices() {
        // LP-over-polymatroid view: every vertex is a priority order; the
        // cµ vertex has the smallest holding cost.
        let classes = classes_3();
        let cmu = cmu_order(&classes);
        let cmu_cost = mg1_nonpreemptive_priority(&classes, &cmu).holding_cost_rate;
        let orders: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        for order in orders {
            let cost = mg1_nonpreemptive_priority(&classes, &order).holding_cost_rate;
            assert!(cmu_cost <= cost + 1e-9);
        }
    }
}

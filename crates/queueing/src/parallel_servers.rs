//! Multiclass M/M/m parallel servers with the cµ/Klimov index used as a
//! heuristic (Glazebrook–Niño-Mora 2001).
//!
//! With more than one server the cµ-rule is no longer exactly optimal, but
//! the survey quotes the achievable-region analysis showing that the index
//! heuristic comes with a relaxation lower bound whose gap closes in heavy
//! traffic.  This module provides:
//!
//! * an event-driven simulator of the multiclass M/M/m queue under a
//!   nonpreemptive static priority order;
//! * a **valid lower bound**: any policy for `m` unit-rate servers can be
//!   emulated, preemptively and with the same completion times, on a single
//!   server that works `m` times faster, and on that fast server the
//!   preemptive cµ-rule is optimal for exponential service times; its exact
//!   value comes from the preemptive-priority formulas of
//!   [`crate::cobham`];
//! * a heavy-traffic sweep (experiment E13) reporting the ratio of the
//!   simulated index-policy cost to the bound as the load approaches one.

use crate::cmu::cmu_order;
use crate::cobham::mg1_preemptive_priority;
use crate::sampling::sample_exp;
use rand::RngCore;
use ss_core::job::JobClass;
use ss_distributions::{dyn_dist, Exponential};
use ss_sim::stats::TimeWeighted;
use std::collections::VecDeque;

/// Result of one M/M/m simulation run.
#[derive(Debug, Clone)]
pub struct MmmResult {
    /// Time-average number in system per class.
    pub mean_number: Vec<f64>,
    /// `Σ_j c_j * mean_number[j]`.
    pub holding_cost_rate: f64,
}

/// Simulate a multiclass M/M/m queue (exponential services) under a
/// nonpreemptive static priority order.
pub fn simulate_mmm_priority(
    classes: &[JobClass],
    servers: usize,
    priority_order: &[usize],
    horizon: f64,
    warmup: f64,
    rng: &mut dyn RngCore,
) -> MmmResult {
    let n = classes.len();
    assert!(servers >= 1);
    assert_eq!(priority_order.len(), n);
    assert!(horizon > warmup);
    let mut rank = vec![0usize; n];
    for (pos, &c) in priority_order.iter().enumerate() {
        rank[c] = pos;
    }

    let mut queues: Vec<VecDeque<f64>> = vec![VecDeque::new(); n];
    let mut next_arrival: Vec<f64> = classes
        .iter()
        .map(|c| {
            if c.arrival_rate > 0.0 {
                sample_exp(rng, c.arrival_rate)
            } else {
                f64::INFINITY
            }
        })
        .collect();
    // Busy servers: completion times + class.
    let mut busy: Vec<(f64, usize)> = Vec::with_capacity(servers);
    let mut counts = vec![0usize; n];
    let mut trackers: Vec<TimeWeighted> = (0..n).map(|_| TimeWeighted::new(0.0, 0.0)).collect();
    let mut warmup_done = false;
    let mut clock;

    loop {
        let (arr_class, arr_time) = next_arrival
            .iter()
            .cloned()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let next_completion = busy.iter().map(|&(t, _)| t).fold(f64::INFINITY, f64::min);
        let t = arr_time.min(next_completion);
        if t > horizon {
            break;
        }
        clock = t;
        if !warmup_done && clock >= warmup {
            for tr in &mut trackers {
                tr.update(clock, tr.current());
                tr.reset(clock);
            }
            warmup_done = true;
        }

        if arr_time <= next_completion {
            counts[arr_class] += 1;
            trackers[arr_class].update(clock, counts[arr_class] as f64);
            queues[arr_class].push_back(clock);
            next_arrival[arr_class] = clock + sample_exp(rng, classes[arr_class].arrival_rate);
        } else {
            // Remove the completing server.
            let pos = busy
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            let (_, class) = busy.swap_remove(pos);
            counts[class] -= 1;
            trackers[class].update(clock, counts[class] as f64);
        }

        // Assign free servers to the highest-priority waiting customers.
        while busy.len() < servers {
            let next_class = (0..n)
                .filter(|&c| !queues[c].is_empty())
                .min_by_key(|&c| rank[c]);
            let Some(c) = next_class else { break };
            queues[c].pop_front();
            let service = classes[c].service.sample(rng);
            busy.push((clock + service, c));
        }
    }

    let mean_number: Vec<f64> = trackers.iter().map(|tr| tr.time_average(horizon)).collect();
    let holding_cost_rate = classes
        .iter()
        .enumerate()
        .map(|(c, cl)| cl.holding_cost * mean_number[c])
        .sum();
    MmmResult {
        mean_number,
        holding_cost_rate,
    }
}

/// The Erlang-C delay probability of an M/M/c queue: `P(wait > 0)` for
/// Poisson arrivals at rate `lambda`, `c` servers each of rate `mu`.
/// Computed through the Erlang-B recursion `B_k = a B_{k-1} / (k + a
/// B_{k-1})` (numerically stable for any offered load `a = λ/µ`), then
/// converted via `C = B_c / (1 - ρ (1 - B_c))`.
pub fn erlang_c(servers: usize, lambda: f64, mu: f64) -> f64 {
    assert!(servers >= 1 && lambda > 0.0 && mu > 0.0);
    let rho = lambda / (servers as f64 * mu);
    assert!(rho < 1.0, "Erlang C needs a stable queue (rho = {rho})");
    let a = lambda / mu;
    let mut b = 1.0; // Erlang-B with 0 servers
    for k in 1..=servers {
        b = a * b / (k as f64 + a * b);
    }
    b / (1.0 - rho * (1.0 - b))
}

/// Exact mean queueing delay (time in queue, excluding service) of the
/// FIFO M/M/c queue: `W_q = C(c, λ/µ) / (c µ - λ)`.
pub fn mmc_mean_wait(servers: usize, lambda: f64, mu: f64) -> f64 {
    erlang_c(servers, lambda, mu) / (servers as f64 * mu - lambda)
}

/// Stationary distribution `p_0..p_K` of the M/M/c/K queue (`capacity`
/// = `K` = the maximum number *in system*, waiting plus in service, so
/// `capacity >= servers`).  Finite birth–death chain, so no stability
/// condition: any offered load is fine, including overload.
///
/// Unnormalised terms accumulate relative to `p_0 = 1` via
/// `t_{n+1} = t_n · a / (n+1)` for `n < c` and `t_{n+1} = t_n · ρ` above,
/// with `a = λ/µ` and `ρ = a/c` — numerically stable for the moderate
/// buffer sizes finite-queue models use.
fn mmck_distribution(servers: usize, capacity: usize, lambda: f64, mu: f64) -> Vec<f64> {
    assert!(servers >= 1 && lambda > 0.0 && mu > 0.0);
    assert!(
        capacity >= servers,
        "system capacity K = {capacity} must admit the {servers} servers"
    );
    let a = lambda / mu;
    let rho = a / servers as f64;
    let mut terms = Vec::with_capacity(capacity + 1);
    let mut t = 1.0;
    terms.push(t);
    for n in 0..capacity {
        t *= if n < servers { a / (n + 1) as f64 } else { rho };
        terms.push(t);
    }
    let norm: f64 = terms.iter().sum();
    terms.iter_mut().for_each(|p| *p /= norm);
    terms
}

/// Blocking probability `p_K` of the M/M/c/K queue: by PASTA, the
/// fraction of Poisson arrivals that find the system full and are lost.
/// `capacity` counts requests *in system* (waiting + in service).  At
/// `capacity == servers` this is exactly the Erlang-B loss formula.
pub fn mmck_blocking_probability(servers: usize, capacity: usize, lambda: f64, mu: f64) -> f64 {
    *mmck_distribution(servers, capacity, lambda, mu)
        .last()
        .expect("the distribution is nonempty")
}

/// Exact mean queueing delay (time in queue, excluding service) of an
/// *accepted* request in the M/M/c/K queue: `W_q = L_q / λ (1 − p_K)` by
/// Little's law on the effective arrival rate.
pub fn mmck_mean_wait(servers: usize, capacity: usize, lambda: f64, mu: f64) -> f64 {
    let p = mmck_distribution(servers, capacity, lambda, mu);
    let lq: f64 = p
        .iter()
        .enumerate()
        .skip(servers + 1)
        .map(|(n, pn)| (n - servers) as f64 * pn)
        .sum();
    let lambda_eff = lambda * (1.0 - p[capacity]);
    if lambda_eff > 0.0 {
        lq / lambda_eff
    } else {
        0.0
    }
}

/// The fast-single-server lower bound on the holding-cost rate of *any*
/// policy for `m` parallel unit-rate servers: the preemptive cµ optimum of
/// the M/G/1 queue whose service times are the originals divided by `m`.
pub fn fast_server_lower_bound(classes: &[JobClass], servers: usize) -> f64 {
    let scaled: Vec<JobClass> = classes
        .iter()
        .map(|c| {
            JobClass::new(
                c.id,
                c.arrival_rate,
                dyn_dist(Exponential::with_mean(c.mean_service() / servers as f64)),
                c.holding_cost,
            )
        })
        .collect();
    let order = cmu_order(&scaled);
    mg1_preemptive_priority(&scaled, &order).holding_cost_rate
}

/// One point of the heavy-traffic sweep of experiment E13.
#[derive(Debug, Clone)]
pub struct HeavyTrafficPoint {
    /// System load `ρ = Σ λ_j E[S_j] / m`.
    pub rho: f64,
    /// Simulated holding-cost rate of the cµ priority rule.
    pub cmu_cost: f64,
    /// Fast-single-server lower bound.
    pub lower_bound: f64,
    /// `cmu_cost / lower_bound`.
    pub ratio: f64,
}

/// Sweep the load by scaling all arrival rates: for each factor, simulate
/// the cµ rule on `servers` servers and compare with the lower bound.
///
/// The sweep points are simulated in parallel on the workspace thread pool;
/// each point draws from its own [`ss_sim::RngStreams`] stream keyed by the
/// point index, so the output is bit-for-bit identical for any thread count.
pub fn heavy_traffic_sweep(
    base_classes: &[JobClass],
    servers: usize,
    load_factors: &[f64],
    horizon: f64,
    warmup: f64,
    seed: u64,
) -> Vec<HeavyTrafficPoint> {
    let streams = ss_sim::RngStreams::new(seed);
    ss_sim::pool::parallel_indexed(load_factors.len(), |point| {
        let factor = load_factors[point];
        let classes: Vec<JobClass> = base_classes
            .iter()
            .map(|c| {
                JobClass::new(
                    c.id,
                    c.arrival_rate * factor,
                    c.service.clone(),
                    c.holding_cost,
                )
            })
            .collect();
        let rho: f64 = classes.iter().map(|c| c.load()).sum::<f64>() / servers as f64;
        assert!(rho < 1.0, "sweep point is unstable (rho = {rho})");
        let order = cmu_order(&classes);
        let mut rng = streams.stream(point as u64);
        let sim = simulate_mmm_priority(&classes, servers, &order, horizon, warmup, &mut rng);
        let lb = fast_server_lower_bound(&classes, servers);
        HeavyTrafficPoint {
            rho,
            cmu_cost: sim.holding_cost_rate,
            lower_bound: lb,
            ratio: sim.holding_cost_rate / lb,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn base_classes() -> Vec<JobClass> {
        vec![
            JobClass::new(0, 0.5, dyn_dist(Exponential::with_mean(1.0)), 1.0),
            JobClass::new(1, 0.4, dyn_dist(Exponential::with_mean(0.6)), 3.0),
        ]
    }

    #[test]
    fn single_server_single_class_matches_mm1() {
        let classes = vec![JobClass::new(
            0,
            0.6,
            dyn_dist(Exponential::with_mean(1.0)),
            1.0,
        )];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let res = simulate_mmm_priority(&classes, 1, &[0], 80_000.0, 2_000.0, &mut rng);
        // M/M/1: L = rho / (1 - rho) = 1.5.
        assert!(
            (res.mean_number[0] - 1.5).abs() < 0.15,
            "L = {}",
            res.mean_number[0]
        );
    }

    #[test]
    fn two_server_erlang_c_sanity() {
        // M/M/2 with rho = 0.75 per-server: L = Lq + rho*2 where Lq from Erlang C.
        let classes = vec![JobClass::new(
            0,
            1.5,
            dyn_dist(Exponential::with_mean(1.0)),
            1.0,
        )];
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let res = simulate_mmm_priority(&classes, 2, &[0], 80_000.0, 2_000.0, &mut rng);
        // L = Lq + a from Little's law, Lq = lambda * Wq.
        let expected = 1.5 * mmc_mean_wait(2, 1.5, 1.0) + 1.5;
        assert!(
            (res.mean_number[0] - expected).abs() / expected < 0.08,
            "L = {} vs Erlang-C {expected}",
            res.mean_number[0]
        );
    }

    #[test]
    fn erlang_c_matches_hand_computed_values() {
        // m=2, a=1.5: the classic textbook value P(wait) = 9/14 = 0.642857.
        assert!((erlang_c(2, 1.5, 1.0) - 9.0 / 14.0).abs() < 1e-12);
        // c=1 reduces to M/M/1: P(wait) = rho, Wq = rho / (mu - lambda).
        assert!((erlang_c(1, 0.6, 1.0) - 0.6).abs() < 1e-12);
        assert!((mmc_mean_wait(1, 0.6, 1.0) - 0.6 / 0.4).abs() < 1e-12);
        // Rate scaling: speeding everything up by x scales Wq by 1/x.
        let w = mmc_mean_wait(3, 2.4, 1.0);
        assert!((mmc_mean_wait(3, 4.8, 2.0) - w / 2.0).abs() < 1e-12);
    }

    #[test]
    fn mmck_reduces_to_the_known_closed_forms() {
        // K = c is Erlang B; cross-check against the B recursion that
        // erlang_c() uses internally (c=2, a=1.5): B_2 = 0.310344827...
        let a: f64 = 1.5;
        let mut b = 1.0;
        for k in 1..=2 {
            b = a * b / (k as f64 + a * b);
        }
        assert!((mmck_blocking_probability(2, 2, 1.5, 1.0) - b).abs() < 1e-12);
        // c=1 is M/M/1/K: p_K = (1-rho) rho^K / (1 - rho^{K+1}).
        let rho: f64 = 0.9;
        let k = 5;
        let exact = (1.0 - rho) * rho.powi(k) / (1.0 - rho.powi(k + 1));
        assert!((mmck_blocking_probability(1, k as usize, 0.9, 1.0) - exact).abs() < 1e-12);
        // rho = 1 on a single server: the distribution is uniform, so
        // p_K = 1 / (K + 1).
        assert!((mmck_blocking_probability(1, 4, 1.0, 1.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mmck_converges_to_erlang_c_as_the_buffer_grows() {
        // Large K: blocking vanishes and W_q approaches the M/M/c value.
        let w_inf = mmc_mean_wait(3, 2.4, 1.0);
        let w_k = mmck_mean_wait(3, 400, 2.4, 1.0);
        assert!(mmck_blocking_probability(3, 400, 2.4, 1.0) < 1e-12);
        assert!((w_k - w_inf).abs() < 1e-9, "W_q {w_k} vs Erlang-C {w_inf}");
    }

    #[test]
    fn mmck_handles_overload() {
        // rho > 1 is fine on a finite buffer; most arrivals are blocked
        // and the blocking probability approaches 1 - 1/rho (from above:
        // the sub-c terms only subtract mass) as K grows.
        let p = mmck_blocking_probability(2, 10, 4.0, 1.0);
        assert!(p > 0.5 && p < 0.51, "p_K = {p}");
        let p_deep = mmck_blocking_probability(2, 200, 4.0, 1.0);
        assert!(
            (p_deep - 0.5).abs() < 1e-9,
            "deep-buffer overload: {p_deep}"
        );
    }

    #[test]
    fn lower_bound_is_below_simulated_cmu() {
        let classes = base_classes();
        let lb = fast_server_lower_bound(&classes, 2);
        let order = cmu_order(&classes);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sim = simulate_mmm_priority(&classes, 2, &order, 60_000.0, 2_000.0, &mut rng);
        assert!(
            lb <= sim.holding_cost_rate * 1.02,
            "LB {lb} vs sim {}",
            sim.holding_cost_rate
        );
    }

    #[test]
    fn cmu_beats_reverse_priority_on_two_servers() {
        let classes = base_classes();
        let order = cmu_order(&classes);
        let mut reverse = order.clone();
        reverse.reverse();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let a = simulate_mmm_priority(&classes, 2, &order, 60_000.0, 2_000.0, &mut rng);
        let b = simulate_mmm_priority(&classes, 2, &reverse, 60_000.0, 2_000.0, &mut rng);
        assert!(a.holding_cost_rate < b.holding_cost_rate);
    }

    #[test]
    fn heavy_traffic_ratio_approaches_one() {
        // E13 shape: the ratio sim / bound falls toward 1 as rho -> 1.
        let classes = base_classes(); // load 0.74 on 2 servers at factor 1... scale below
        let points = heavy_traffic_sweep(&classes, 2, &[1.0, 2.4], 120_000.0, 4_000.0, 5);
        assert_eq!(points.len(), 2);
        assert!(points[0].rho < points[1].rho && points[1].rho < 1.0);
        assert!(points[0].ratio >= 1.0 - 0.05);
        assert!(
            points[1].ratio < points[0].ratio,
            "ratio should fall towards 1 in heavy traffic: {:?}",
            points
        );
    }

    #[test]
    fn heavy_traffic_sweep_is_thread_count_invariant() {
        let classes = base_classes();
        let run = |threads: usize| {
            ss_sim::pool::with_threads(threads, || {
                heavy_traffic_sweep(&classes, 2, &[1.0, 1.6, 2.0], 30_000.0, 1_000.0, 42)
            })
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.rho.to_bits(), b.rho.to_bits());
            assert_eq!(a.cmu_cost.to_bits(), b.cmu_cost.to_bits());
            assert_eq!(a.lower_bound.to_bits(), b.lower_bound.to_bits());
            assert_eq!(a.ratio.to_bits(), b.ratio.to_bits());
        }
    }
}

//! The achievable-region method for the multiclass M/G/1 queue and the
//! Klimov network (Coffman–Mitrani 1980, Federgruen–Groenevelt 1988,
//! Shanthikumar–Yao 1992, Bertsimas–Niño-Mora 1996).
//!
//! Instead of searching the policy space, the achievable-region method
//! characterises the set of *performance vectors* any admissible policy can
//! produce and optimises the cost function over that set directly:
//!
//! * for the multiclass M/G/1 queue the vector `x_j = ρ_j W_j` ranges over
//!   a **polymatroid base**: every subset `S` of classes satisfies
//!   `Σ_{j∈S} x_j ≥ b(S)` and the full set holds with equality (the
//!   work-conservation law), where `b(S)` is attained by giving `S`
//!   absolute priority;
//! * the **vertices** of that polytope are exactly the static priority
//!   rules ([`vertex_performance`] reproduces Cobham's waiting times from
//!   nested `b(·)` differences alone);
//! * minimising the holding-cost rate is therefore a **linear program**
//!   ([`region_lp`]) whose optimum is attained at the cµ vertex — the
//!   achievable-region proof of the cµ-rule the survey describes;
//! * with Bernoulli feedback the region becomes an *extended* polymatroid
//!   and the optimising vertex is produced by the adaptive-greedy index
//!   algorithm; [`KlimovWorkMeasure`] plugs the Klimov network's restricted
//!   busy periods into [`ss_core::adaptive_greedy`], recovering Klimov's
//!   indices from the conservation-law framework.
//!
//! Experiment E17 uses this module to show that the region LP, the
//! adaptive-greedy indices and the exhaustive search over priority orders
//! all agree.

use crate::cobham::{mg1_nonpreemptive_priority, total_load};
use crate::conservation::{conserved_work, subset_lower_bound};
use crate::klimov::KlimovNetwork;
use ss_core::adaptive_greedy::{adaptive_greedy, AdaptiveGreedyResult, IsolatedJobs, WorkMeasure};
use ss_core::job::JobClass;
use ss_core::linalg::solve_dense;
use ss_lp::{LinearProgram, Relation};

/// The polymatroid vertex induced by a static priority order: the vector
/// `x_j = ρ_j W_j` computed from nested set-function differences
/// `x_{π_k} = b({π_0..π_k}) − b({π_0..π_{k-1}})` (highest priority first).
///
/// By the conservation-law structure this equals the Cobham value
/// `ρ_j W_j(π)` for every class — the "vertices are priority rules" half of
/// the achievable-region argument.
pub fn vertex_performance(classes: &[JobClass], priority_order: &[usize]) -> Vec<f64> {
    let n = classes.len();
    assert_eq!(priority_order.len(), n);
    assert!(total_load(classes) < 1.0, "unstable load");
    let mut x = vec![0.0; n];
    let mut prefix: Vec<usize> = Vec::with_capacity(n);
    let mut prev_b = 0.0;
    for &j in priority_order {
        prefix.push(j);
        let b = subset_lower_bound(classes, &prefix);
        x[j] = b - prev_b;
        prev_b = b;
    }
    x
}

/// Result of optimising the holding-cost rate over the achievable region.
#[derive(Debug, Clone)]
pub struct RegionLpResult {
    /// Optimal steady-state holding-cost rate `Σ_j c_j E[L_j]`.
    pub holding_cost_rate: f64,
    /// Optimal performance vector `x_j = ρ_j W_j`.
    pub x: Vec<f64>,
    /// The per-class mean waits `W_j = x_j / ρ_j` implied by the optimum.
    pub waits: Vec<f64>,
}

/// Minimise the holding-cost rate over the achievable region of the
/// nonpreemptive multiclass M/G/1 queue by linear programming.
///
/// Variables are `x_j = ρ_j W_j`; the constraints are the `2^N − 2` proper
/// subset lower bounds plus the full-set conservation identity, and the
/// objective is `Σ_j (c_j µ_j) x_j` (the holding-cost rate minus the
/// policy-independent in-service term, which is added back to the reported
/// value).  Limited to `N ≤ 12` classes because the constraint count grows
/// as `2^N`.
pub fn region_lp(classes: &[JobClass]) -> RegionLpResult {
    let n = classes.len();
    assert!(
        (1..=12).contains(&n),
        "region LP limited to 1..=12 classes, got {n}"
    );
    assert!(total_load(classes) < 1.0, "unstable load");

    let objective: Vec<f64> = classes.iter().map(|c| c.cmu_index()).collect();
    let mut lp = LinearProgram::minimize(objective);

    for mask in 1u32..(1u32 << n) {
        let subset: Vec<usize> = (0..n).filter(|&j| mask & (1 << j) != 0).collect();
        let mut row = vec![0.0; n];
        for &j in &subset {
            row[j] = 1.0;
        }
        if subset.len() == n {
            lp.add_constraint(row, Relation::Eq, conserved_work(classes));
        } else {
            lp.add_constraint(row, Relation::Ge, subset_lower_bound(classes, &subset));
        }
    }

    let sol = lp.solve().expect("achievable-region LP must be feasible");
    let x = sol.x[..n].to_vec();
    let waits: Vec<f64> = classes
        .iter()
        .enumerate()
        .map(|(j, c)| if c.load() > 0.0 { x[j] / c.load() } else { 0.0 })
        .collect();
    // Add back the policy-independent in-service cost Σ_j c_j ρ_j.
    let in_service: f64 = classes.iter().map(|c| c.holding_cost * c.load()).sum();
    RegionLpResult {
        holding_cost_rate: sol.objective + in_service,
        x,
        waits,
    }
}

/// The cµ-rule derived through the conservation-law framework: run the
/// adaptive-greedy algorithm with the trivial (no-feedback) work measure.
/// The produced indices are exactly `c_j µ_j`.
pub fn cmu_via_adaptive_greedy(classes: &[JobClass]) -> AdaptiveGreedyResult {
    let oracle = IsolatedJobs::new(classes.iter().map(|c| c.mean_service()).collect());
    let costs: Vec<f64> = classes.iter().map(|c| c.holding_cost).collect();
    adaptive_greedy(&costs, &oracle)
}

/// The Klimov network's work measure: `T_j(S)` is the expected service time
/// a class-`j` customer accumulates while its class stays inside `S`
/// (its restricted busy period), and `E_j(S)` is the expected holding-cost
/// rate of the first class it becomes outside `S` (zero if it leaves).
/// Plugging this oracle into the adaptive-greedy algorithm reproduces
/// Klimov's indices — the extended-polymatroid account of Klimov's theorem.
#[derive(Debug, Clone)]
pub struct KlimovWorkMeasure<'a> {
    network: &'a KlimovNetwork,
}

impl<'a> KlimovWorkMeasure<'a> {
    /// Wrap a Klimov network.
    pub fn new(network: &'a KlimovNetwork) -> Self {
        Self { network }
    }

    /// Solve the restricted linear system for the members of `continuation`
    /// and return the per-member solution of `v = rhs + P_S v`.
    fn solve_restricted(&self, continuation: &[bool], rhs: impl Fn(usize) -> f64) -> Vec<f64> {
        let n = self.network.num_classes();
        let members: Vec<usize> = (0..n).filter(|&j| continuation[j]).collect();
        let m = members.len();
        let pos = |class: usize| members.iter().position(|&x| x == class).unwrap();
        let mut a = vec![vec![0.0; m]; m];
        let mut b = vec![0.0; m];
        for (row, &cls) in members.iter().enumerate() {
            a[row][row] = 1.0;
            for &other in &members {
                a[row][pos(other)] -= self.network.routing[cls][other];
            }
            b[row] = rhs(cls);
        }
        solve_dense(a, b)
    }
}

impl WorkMeasure for KlimovWorkMeasure<'_> {
    fn num_classes(&self) -> usize {
        self.network.num_classes()
    }

    fn work(&self, class: usize, continuation: &[bool]) -> f64 {
        assert!(
            continuation[class],
            "candidate must belong to its continuation set"
        );
        let members: Vec<usize> = (0..self.network.num_classes())
            .filter(|&j| continuation[j])
            .collect();
        let t = self.solve_restricted(continuation, |cls| self.network.services[cls].mean());
        let pos = members.iter().position(|&x| x == class).unwrap();
        t[pos]
    }

    fn exit_cost(&self, class: usize, continuation: &[bool]) -> f64 {
        assert!(
            continuation[class],
            "candidate must belong to its continuation set"
        );
        let n = self.network.num_classes();
        let members: Vec<usize> = (0..n).filter(|&j| continuation[j]).collect();
        let e = self.solve_restricted(continuation, |cls| {
            (0..n)
                .filter(|&j| !continuation[j])
                .map(|j| self.network.routing[cls][j] * self.network.holding_costs[j])
                .sum()
        });
        let pos = members.iter().position(|&x| x == class).unwrap();
        e[pos]
    }
}

/// Klimov's indices recomputed through the generic adaptive-greedy
/// algorithm (rather than the dedicated implementation in
/// [`crate::klimov::klimov_indices`]); the two must agree.
pub fn klimov_via_adaptive_greedy(network: &KlimovNetwork) -> AdaptiveGreedyResult {
    let oracle = KlimovWorkMeasure::new(network);
    adaptive_greedy(&network.holding_costs, &oracle)
}

/// Convenience: the exact holding-cost rate of the priority order induced
/// by an adaptive-greedy run on a plain (no-feedback) multiclass M/G/1.
pub fn holding_cost_of_order(classes: &[JobClass], order: &[usize]) -> f64 {
    mg1_nonpreemptive_priority(classes, order).holding_cost_rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmu::cmu_order;
    use crate::cobham::best_nonpreemptive_order;
    use crate::klimov::{klimov_indices, klimov_order};
    use ss_distributions::{dyn_dist, Erlang, Exponential, HyperExponential};

    fn classes_3() -> Vec<JobClass> {
        vec![
            JobClass::new(0, 0.20, dyn_dist(Exponential::with_mean(1.0)), 1.0),
            JobClass::new(1, 0.25, dyn_dist(Erlang::with_mean(3, 0.8)), 3.0),
            JobClass::new(
                2,
                0.10,
                dyn_dist(HyperExponential::with_mean_scv(1.5, 4.0)),
                2.0,
            ),
        ]
    }

    fn feedback_network() -> KlimovNetwork {
        KlimovNetwork::new(
            vec![0.25, 0.1, 0.05],
            vec![
                dyn_dist(Exponential::with_mean(0.8)),
                dyn_dist(Exponential::with_mean(0.6)),
                dyn_dist(Exponential::with_mean(1.2)),
            ],
            vec![1.0, 2.0, 4.0],
            vec![
                vec![0.0, 0.6, 0.0],
                vec![0.0, 0.0, 0.3],
                vec![0.0, 0.0, 0.0],
            ],
        )
    }

    #[test]
    fn vertex_performance_matches_cobham_for_every_order() {
        let classes = classes_3();
        let orders: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        for order in orders {
            let vertex = vertex_performance(&classes, &order);
            let exact = mg1_nonpreemptive_priority(&classes, &order);
            for j in 0..classes.len() {
                let expected = classes[j].load() * exact.wait[j];
                assert!(
                    (vertex[j] - expected).abs() < 1e-9,
                    "order {order:?}, class {j}: vertex {} vs Cobham {expected}",
                    vertex[j]
                );
            }
        }
    }

    #[test]
    fn region_lp_optimum_equals_cmu_rule_cost() {
        let classes = classes_3();
        let lp = region_lp(&classes);
        let cmu = cmu_order(&classes);
        let cmu_cost = mg1_nonpreemptive_priority(&classes, &cmu).holding_cost_rate;
        let (_, best_cost) = best_nonpreemptive_order(&classes);
        assert!(
            (lp.holding_cost_rate - cmu_cost).abs() < 1e-6,
            "LP {} vs cmu {}",
            lp.holding_cost_rate,
            cmu_cost
        );
        assert!(
            (lp.holding_cost_rate - best_cost).abs() < 1e-6,
            "LP {} vs exhaustive best {}",
            lp.holding_cost_rate,
            best_cost
        );
    }

    #[test]
    fn region_lp_waits_match_the_cmu_vertex() {
        let classes = classes_3();
        let lp = region_lp(&classes);
        let cmu = cmu_order(&classes);
        let exact = mg1_nonpreemptive_priority(&classes, &cmu);
        for j in 0..classes.len() {
            assert!(
                (lp.waits[j] - exact.wait[j]).abs() < 1e-6,
                "class {j}: LP wait {} vs Cobham {}",
                lp.waits[j],
                exact.wait[j]
            );
        }
    }

    #[test]
    fn region_lp_single_class_is_pollaczek_khinchine() {
        let classes = vec![JobClass::new(
            0,
            0.5,
            dyn_dist(Exponential::with_mean(1.0)),
            2.0,
        )];
        let lp = region_lp(&classes);
        let pk = crate::cobham::pollaczek_khinchine_wait(&classes);
        assert!((lp.waits[0] - pk).abs() < 1e-9);
    }

    #[test]
    fn adaptive_greedy_reduces_to_cmu_without_feedback() {
        let classes = classes_3();
        let result = cmu_via_adaptive_greedy(&classes);
        for (j, c) in classes.iter().enumerate() {
            assert!(
                (result.indices[j] - c.cmu_index()).abs() < 1e-12,
                "class {j}: {} vs {}",
                result.indices[j],
                c.cmu_index()
            );
        }
        assert_eq!(result.order, cmu_order(&classes));
        assert!(result.rates_non_increasing(1e-9));
    }

    #[test]
    fn adaptive_greedy_reproduces_klimov_indices() {
        let net = feedback_network();
        let generic = klimov_via_adaptive_greedy(&net);
        let dedicated = klimov_indices(&net);
        for j in 0..net.num_classes() {
            assert!(
                (generic.indices[j] - dedicated[j]).abs() < 1e-9,
                "class {j}: adaptive greedy {} vs Klimov {}",
                generic.indices[j],
                dedicated[j]
            );
        }
        assert_eq!(generic.order, klimov_order(&net));
        assert!(generic.rates_non_increasing(1e-9));
    }

    #[test]
    fn klimov_work_measure_without_feedback_is_mean_service() {
        let net = KlimovNetwork::new(
            vec![0.2, 0.3],
            vec![
                dyn_dist(Exponential::with_mean(1.5)),
                dyn_dist(Exponential::with_mean(0.5)),
            ],
            vec![1.0, 2.0],
            vec![vec![0.0; 2]; 2],
        );
        let oracle = KlimovWorkMeasure::new(&net);
        assert!((oracle.work(0, &[true, false]) - 1.5).abs() < 1e-12);
        assert!((oracle.work(1, &[true, true]) - 0.5).abs() < 1e-12);
        assert!((oracle.exit_cost(0, &[true, false]) - 0.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn region_lp_rejects_unstable_instances() {
        let classes = vec![JobClass::new(
            0,
            2.0,
            dyn_dist(Exponential::with_mean(1.0)),
            1.0,
        )];
        let _ = region_lp(&classes);
    }
}

//! Changeover (setup) times and polling disciplines
//! (Levy–Sidi 1990, Reiman–Wein 1998).
//!
//! When switching the server from one job class to another incurs a setup
//! time, the pure cµ-rule (which may switch very often) loses its
//! optimality; polling-style disciplines that serve a queue exhaustively
//! before switching amortise the setups.  Experiment E16 sweeps the setup
//! time and shows the crossover between
//!
//! * the **cµ-with-setups** discipline: after every service completion the
//!   server moves to the nonempty class with the largest cµ index, paying a
//!   setup whenever that class differs from the one just served; and
//! * **exhaustive polling**: the server stays on its current class until
//!   that queue empties, then switches (with a setup) to the nonempty class
//!   with the largest cµ index.

use crate::sampling::sample_exp;
use rand::RngCore;
use ss_core::job::JobClass;
use ss_distributions::DynDist;
use ss_sim::stats::TimeWeighted;
use std::collections::VecDeque;

/// Which discipline the polling simulator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollingDiscipline {
    /// Switch to the highest-cµ nonempty class after every completion.
    CmuWithSetups,
    /// Serve the current class exhaustively, then switch to the
    /// highest-cµ nonempty class.
    Exhaustive,
    /// Gated service: when the server (re)visits a class it closes a gate
    /// behind the customers already waiting, serves exactly those, and then
    /// switches to the highest-cµ nonempty class; customers arriving during
    /// the visit wait for the next one.  The classical alternative to
    /// exhaustive service in the polling literature (Levy–Sidi 1990).
    Gated,
}

/// Result of one polling simulation run.
#[derive(Debug, Clone)]
pub struct PollingResult {
    /// Time-average number in system per class.
    pub mean_number: Vec<f64>,
    /// `Σ_j c_j * mean_number[j]`.
    pub holding_cost_rate: f64,
    /// Number of setups performed (after warm-up).
    pub setups: u64,
}

/// Simulate a multiclass M/G/1 queue with class switchover times.
///
/// `setup[j]` is the distribution of the setup incurred when the server
/// switches *to* class `j`.
pub fn simulate_polling(
    classes: &[JobClass],
    setup: &[DynDist],
    discipline: PollingDiscipline,
    horizon: f64,
    warmup: f64,
    rng: &mut dyn RngCore,
) -> PollingResult {
    let n = classes.len();
    assert_eq!(setup.len(), n);
    assert!(horizon > warmup);
    // cµ ranking (lower rank = higher priority).
    let order = crate::cmu::cmu_order(classes);
    let mut rank = vec![0usize; n];
    for (pos, &c) in order.iter().enumerate() {
        rank[c] = pos;
    }

    let mut queues: Vec<VecDeque<f64>> = vec![VecDeque::new(); n];
    let mut next_arrival: Vec<f64> = classes
        .iter()
        .map(|c| {
            if c.arrival_rate > 0.0 {
                sample_exp(rng, c.arrival_rate)
            } else {
                f64::INFINITY
            }
        })
        .collect();
    let mut counts = vec![0usize; n];
    let mut trackers: Vec<TimeWeighted> = (0..n).map(|_| TimeWeighted::new(0.0, 0.0)).collect();
    let mut warmup_done = false;
    let mut setups = 0u64;

    // Server state: the class it is configured for, and what it is doing.
    let mut configured: Option<usize> = None;
    // (completion_time, class, is_setup)
    let mut busy: Option<(f64, usize, bool)> = None;
    // Gated service: how many of the currently configured class's customers
    // are still behind the gate (0 = the gate must be re-closed on the next
    // visit decision).
    let mut gate_remaining: usize = 0;
    let mut clock;

    loop {
        let (arr_class, arr_time) = next_arrival
            .iter()
            .cloned()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let busy_time = busy.map(|(t, _, _)| t).unwrap_or(f64::INFINITY);
        let t = arr_time.min(busy_time);
        if t > horizon {
            break;
        }
        clock = t;
        if !warmup_done && clock >= warmup {
            for tr in &mut trackers {
                tr.update(clock, tr.current());
                tr.reset(clock);
            }
            warmup_done = true;
        }

        if arr_time <= busy_time {
            counts[arr_class] += 1;
            trackers[arr_class].update(clock, counts[arr_class] as f64);
            queues[arr_class].push_back(clock);
            next_arrival[arr_class] = clock + sample_exp(rng, classes[arr_class].arrival_rate);
        } else {
            let (_, class, was_setup) = busy.take().unwrap();
            if was_setup {
                // Setup finished; the server is now configured for `class`.
                configured = Some(class);
                // A gated visit serves exactly the customers present when
                // the setup (the "gate") completes.
                if discipline == PollingDiscipline::Gated {
                    gate_remaining = queues[class].len();
                }
            } else {
                counts[class] -= 1;
                trackers[class].update(clock, counts[class] as f64);
            }
        }

        // Decide what the (idle) server does next.
        if busy.is_none() {
            // Target class by discipline.
            let target = match discipline {
                PollingDiscipline::CmuWithSetups => (0..n)
                    .filter(|&c| !queues[c].is_empty())
                    .min_by_key(|&c| rank[c]),
                PollingDiscipline::Exhaustive => match configured {
                    Some(c) if !queues[c].is_empty() => Some(c),
                    _ => (0..n)
                        .filter(|&c| !queues[c].is_empty())
                        .min_by_key(|&c| rank[c]),
                },
                PollingDiscipline::Gated => match configured {
                    Some(c) if gate_remaining > 0 && !queues[c].is_empty() => Some(c),
                    _ => (0..n)
                        .filter(|&c| !queues[c].is_empty())
                        .min_by_key(|&c| rank[c]),
                },
            };
            if let Some(target) = target {
                if configured == Some(target) {
                    // Revisiting the configured class without a changeover
                    // (e.g. it is the only nonempty class): re-close the gate
                    // around the customers now waiting.
                    if discipline == PollingDiscipline::Gated && gate_remaining == 0 {
                        gate_remaining = queues[target].len();
                    }
                    // Serve one customer of the configured class.
                    queues[target].pop_front();
                    if discipline == PollingDiscipline::Gated {
                        gate_remaining = gate_remaining.saturating_sub(1);
                    }
                    let service = classes[target].service.sample(rng);
                    busy = Some((clock + service, target, false));
                } else {
                    // Perform a setup towards the target class.
                    let s = setup[target].sample(rng);
                    if clock >= warmup {
                        setups += 1;
                    }
                    busy = Some((clock + s, target, true));
                }
            }
        }
    }

    let mean_number: Vec<f64> = trackers.iter().map(|tr| tr.time_average(horizon)).collect();
    let holding_cost_rate = classes
        .iter()
        .enumerate()
        .map(|(c, cl)| cl.holding_cost * mean_number[c])
        .sum();
    PollingResult {
        mean_number,
        holding_cost_rate,
        setups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ss_distributions::{dyn_dist, Deterministic, Exponential};

    fn classes_2() -> Vec<JobClass> {
        vec![
            JobClass::new(0, 0.35, dyn_dist(Exponential::with_mean(1.0)), 1.0),
            JobClass::new(1, 0.3, dyn_dist(Exponential::with_mean(0.8)), 2.0),
        ]
    }

    fn setups(v: f64) -> Vec<DynDist> {
        vec![
            dyn_dist(Deterministic::new(v)),
            dyn_dist(Deterministic::new(v)),
        ]
    }

    fn run(discipline: PollingDiscipline, setup_time: f64, seed: u64) -> PollingResult {
        let classes = classes_2();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        simulate_polling(
            &classes,
            &setups(setup_time),
            discipline,
            80_000.0,
            2_000.0,
            &mut rng,
        )
    }

    #[test]
    fn zero_setup_cmu_matches_plain_priority_queue() {
        // With zero setup times the cµ-with-setups discipline is the plain
        // nonpreemptive cµ priority queue; check against Cobham.
        let classes = classes_2();
        let order = crate::cmu::cmu_order(&classes);
        let exact = crate::cobham::mg1_nonpreemptive_priority(&classes, &order);
        let res = run(PollingDiscipline::CmuWithSetups, 0.0, 1);
        assert!(
            (res.holding_cost_rate - exact.holding_cost_rate).abs() / exact.holding_cost_rate < 0.1,
            "sim {} vs exact {}",
            res.holding_cost_rate,
            exact.holding_cost_rate
        );
    }

    #[test]
    fn zero_setup_cmu_is_no_worse_than_exhaustive() {
        let cmu = run(PollingDiscipline::CmuWithSetups, 0.0, 2);
        let exhaustive = run(PollingDiscipline::Exhaustive, 0.0, 2);
        assert!(cmu.holding_cost_rate <= exhaustive.holding_cost_rate * 1.05);
    }

    #[test]
    fn large_setups_favour_exhaustive_service() {
        // E16: with substantial changeover times the frequent switching of
        // the cµ rule eats so much capacity that the queue blows up, while
        // exhaustive service amortises the setups over whole busy periods
        // and stays stable with a far lower holding cost.
        let classes = vec![
            JobClass::new(0, 0.45, dyn_dist(Exponential::with_mean(1.0)), 1.0),
            JobClass::new(1, 0.35, dyn_dist(Exponential::with_mean(0.8)), 2.0),
        ];
        let setup = setups(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cmu = simulate_polling(
            &classes,
            &setup,
            PollingDiscipline::CmuWithSetups,
            60_000.0,
            2_000.0,
            &mut rng,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let exhaustive = simulate_polling(
            &classes,
            &setup,
            PollingDiscipline::Exhaustive,
            60_000.0,
            2_000.0,
            &mut rng,
        );
        assert!(
            exhaustive.holding_cost_rate < cmu.holding_cost_rate,
            "exhaustive {} should beat cmu-with-setups {}",
            exhaustive.holding_cost_rate,
            cmu.holding_cost_rate
        );
        assert!(exhaustive.setups < cmu.setups);
    }

    #[test]
    fn setup_count_increases_with_switching_discipline() {
        let cmu = run(PollingDiscipline::CmuWithSetups, 0.1, 4);
        let exhaustive = run(PollingDiscipline::Exhaustive, 0.1, 4);
        assert!(cmu.setups >= exhaustive.setups);
    }

    #[test]
    fn gated_service_is_stable_and_switches_at_least_as_often_as_exhaustive() {
        // Gated visits end after the gated batch even if new work arrived,
        // so the server changes over at least as often as under exhaustive
        // service, and (for this symmetric-cost regime) pays for it with a
        // holding cost at least as large.
        let gated = run(PollingDiscipline::Gated, 0.4, 8);
        let exhaustive = run(PollingDiscipline::Exhaustive, 0.4, 8);
        assert!(gated.holding_cost_rate.is_finite() && gated.holding_cost_rate > 0.0);
        assert!(gated.setups >= exhaustive.setups);
        assert!(gated.holding_cost_rate >= exhaustive.holding_cost_rate * 0.95);
    }

    #[test]
    fn gated_with_zero_setup_stays_close_to_exhaustive() {
        // With no changeover cost the difference between gated and
        // exhaustive service is only the order in which recent arrivals are
        // picked up; the holding-cost rates must be within a few percent.
        let gated = run(PollingDiscipline::Gated, 0.0, 9);
        let exhaustive = run(PollingDiscipline::Exhaustive, 0.0, 9);
        let rel = (gated.holding_cost_rate - exhaustive.holding_cost_rate).abs()
            / exhaustive.holding_cost_rate;
        assert!(
            rel < 0.1,
            "gated {} vs exhaustive {}",
            gated.holding_cost_rate,
            exhaustive.holding_cost_rate
        );
    }
}

//! Klimov's problem: the multiclass M/G/1 queue with Bernoulli feedback
//! (Klimov 1974; discounted extension Tcha–Pliska 1977).
//!
//! After a class-`i` service the customer becomes class `j` with
//! probability `p_ij` and leaves the system with probability
//! `1 - Σ_j p_ij`.  The optimal nonpreemptive policy is again a static
//! priority rule; its indices are produced by Klimov's N-step algorithm,
//! implemented here in its Gittins-like "largest index first" form:
//!
//! * for a candidate class `i` and the set `S` of classes already assigned
//!   (higher) indices, compute
//!   - `T_i(S∪{i})` — the expected *service time* a class-`i` customer
//!     accumulates while its class stays inside `S∪{i}`, and
//!   - `E_i(S∪{i})` — the expected holding-cost *rate* of the class in
//!     which the customer first lands outside `S∪{i}` (zero if it leaves);
//! * the candidate index is `(c_i − E_i) / T_i`; the largest candidate is
//!   assigned next, exactly as in the Varaiya–Walrand–Buyukkoc scheme for
//!   Gittins indices.  With no feedback this reduces to the cµ-rule.
//!
//! The module also contains an event-driven simulator of the feedback
//! queue, used by experiment E12 to verify that the Klimov order attains
//! the smallest simulated holding-cost rate among all static priority
//! orders.

use crate::sampling::sample_exp;
use rand::RngCore;
use ss_core::linalg::solve_dense;
use ss_distributions::DynDist;
use ss_sim::stats::TimeWeighted;
use std::collections::VecDeque;

/// A Klimov network: one server, `N` classes, Poisson external arrivals,
/// general service times, Bernoulli feedback routing.
#[derive(Clone)]
pub struct KlimovNetwork {
    /// External Poisson arrival rate per class.
    pub arrival_rates: Vec<f64>,
    /// Service-time distribution per class.
    pub services: Vec<DynDist>,
    /// Holding-cost rate per class.
    pub holding_costs: Vec<f64>,
    /// Feedback matrix: `routing[i][j]` is the probability that a class-`i`
    /// completion re-enters as class `j`; row sums must be `<= 1` and the
    /// remainder is the probability of leaving the system.
    pub routing: Vec<Vec<f64>>,
}

impl std::fmt::Debug for KlimovNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KlimovNetwork")
            .field("arrival_rates", &self.arrival_rates)
            .field("holding_costs", &self.holding_costs)
            .field("routing", &self.routing)
            .finish()
    }
}

impl KlimovNetwork {
    /// Create a network, validating dimensions and routing rows.
    pub fn new(
        arrival_rates: Vec<f64>,
        services: Vec<DynDist>,
        holding_costs: Vec<f64>,
        routing: Vec<Vec<f64>>,
    ) -> Self {
        let n = arrival_rates.len();
        assert!(n > 0);
        assert_eq!(services.len(), n);
        assert_eq!(holding_costs.len(), n);
        assert_eq!(routing.len(), n);
        for (i, row) in routing.iter().enumerate() {
            assert_eq!(row.len(), n, "routing row {i} has wrong length");
            let total: f64 = row.iter().sum();
            assert!(total <= 1.0 + 1e-9, "routing row {i} sums to {total} > 1");
            assert!(row.iter().all(|&p| p >= -1e-12));
        }
        assert!(arrival_rates.iter().all(|&a| a >= 0.0));
        assert!(holding_costs.iter().all(|&c| c >= 0.0));
        Self {
            arrival_rates,
            services,
            holding_costs,
            routing,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.arrival_rates.len()
    }

    /// Effective arrival rates `γ = α (I - P)^{-1}` (total visit rate per
    /// class including feedback).
    pub fn effective_arrival_rates(&self) -> Vec<f64> {
        let n = self.num_classes();
        // Solve gamma = alpha + gamma P  =>  gamma (I - P) = alpha  =>
        // (I - P)^T gamma^T = alpha^T.
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                a[i][j] = (if i == j { 1.0 } else { 0.0 }) - self.routing[j][i];
            }
        }
        solve_dense(a, self.arrival_rates.clone())
    }

    /// Total traffic intensity `ρ = Σ_i γ_i E[S_i]` (must be < 1 for
    /// stability).
    pub fn total_load(&self) -> f64 {
        self.effective_arrival_rates()
            .iter()
            .zip(&self.services)
            .map(|(g, s)| g * s.mean())
            .sum()
    }
}

/// Klimov's indices (largest-index-first form described in the module
/// docs).  Higher index = higher priority; with no feedback the result is
/// exactly the cµ index `c_i / E[S_i]`.
pub fn klimov_indices(network: &KlimovNetwork) -> Vec<f64> {
    let n = network.num_classes();
    let betas: Vec<f64> = network.services.iter().map(|s| s.mean()).collect();
    let costs = &network.holding_costs;
    let mut index = vec![f64::NAN; n];
    let mut assigned = vec![false; n];

    for _ in 0..n {
        let mut best_class = usize::MAX;
        let mut best_value = f64::NEG_INFINITY;
        for i in 0..n {
            if assigned[i] {
                continue;
            }
            // Candidate continuation set S' = assigned ∪ {i}.
            let members: Vec<usize> = (0..n).filter(|&j| assigned[j] || j == i).collect();
            let pos = |class: usize| members.iter().position(|&m| m == class).unwrap();
            let m = members.len();
            // T_a = beta_a + sum_{b in S'} p_ab T_b
            let mut a_mat = vec![vec![0.0; m]; m];
            let mut t_rhs = vec![0.0; m];
            let mut e_rhs = vec![0.0; m];
            for (row, &cls) in members.iter().enumerate() {
                a_mat[row][row] = 1.0;
                for &other in &members {
                    a_mat[row][pos(other)] -= network.routing[cls][other];
                }
                t_rhs[row] = betas[cls];
                // Expected cost rate of the first class reached outside S'
                // (leaving the system contributes 0).
                e_rhs[row] = (0..n)
                    .filter(|&j| !(assigned[j] || j == i))
                    .map(|j| network.routing[cls][j] * costs[j])
                    .sum();
            }
            let t = solve_dense(a_mat.clone(), t_rhs);
            let e = solve_dense(a_mat, e_rhs);
            let value = (costs[i] - e[pos(i)]) / t[pos(i)];
            if value > best_value {
                best_value = value;
                best_class = i;
            }
        }
        index[best_class] = best_value;
        assigned[best_class] = true;
    }
    index
}

/// The Klimov priority order (highest index first).
pub fn klimov_order(network: &KlimovNetwork) -> Vec<usize> {
    let idx = klimov_indices(network);
    ss_core::index::argsort_decreasing(&idx)
}

/// Result of one simulation run of the feedback queue.
#[derive(Debug, Clone)]
pub struct KlimovSimResult {
    /// Time-average number in system per class.
    pub mean_number: Vec<f64>,
    /// `Σ_j c_j * mean_number[j]`.
    pub holding_cost_rate: f64,
    /// Completed services per class (after warm-up).
    pub services_completed: Vec<u64>,
}

/// Simulate the Klimov network under a static nonpreemptive priority order
/// (`priority_order[0]` served first).
pub fn simulate_klimov(
    network: &KlimovNetwork,
    priority_order: &[usize],
    horizon: f64,
    warmup: f64,
    rng: &mut dyn RngCore,
) -> KlimovSimResult {
    use rand::Rng;
    let n = network.num_classes();
    assert_eq!(priority_order.len(), n);
    assert!(horizon > warmup);
    let mut rank = vec![0usize; n];
    for (pos, &c) in priority_order.iter().enumerate() {
        rank[c] = pos;
    }

    let mut queues: Vec<VecDeque<f64>> = vec![VecDeque::new(); n]; // arrival times
    let mut next_arrival: Vec<f64> = network
        .arrival_rates
        .iter()
        .map(|&a| {
            if a > 0.0 {
                sample_exp(rng, a)
            } else {
                f64::INFINITY
            }
        })
        .collect();
    let mut counts = vec![0usize; n];
    let mut trackers: Vec<TimeWeighted> = (0..n).map(|_| TimeWeighted::new(0.0, 0.0)).collect();
    let mut in_service: Option<usize> = None; // class being served
    let mut completion = f64::INFINITY;
    let mut clock;
    let mut warmup_done = false;
    let mut services_completed = vec![0u64; n];

    loop {
        let (arr_class, arr_time) = next_arrival
            .iter()
            .cloned()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let t = arr_time.min(completion);
        if t > horizon {
            break;
        }
        clock = t;
        if !warmup_done && clock >= warmup {
            for tr in &mut trackers {
                tr.update(clock, tr.current());
                tr.reset(clock);
            }
            warmup_done = true;
        }

        if arr_time <= completion {
            // External arrival.
            counts[arr_class] += 1;
            trackers[arr_class].update(clock, counts[arr_class] as f64);
            queues[arr_class].push_back(clock);
            next_arrival[arr_class] = clock + sample_exp(rng, network.arrival_rates[arr_class]);
        } else {
            // Service completion; route the customer.
            let class = in_service.take().expect("completion without service");
            counts[class] -= 1;
            trackers[class].update(clock, counts[class] as f64);
            if clock >= warmup {
                services_completed[class] += 1;
            }
            let u: f64 = rng.gen::<f64>();
            let mut acc = 0.0;
            let mut routed = None;
            for j in 0..n {
                acc += network.routing[class][j];
                if u <= acc {
                    routed = Some(j);
                    break;
                }
            }
            if let Some(j) = routed {
                counts[j] += 1;
                trackers[j].update(clock, counts[j] as f64);
                queues[j].push_back(clock);
            }
            completion = f64::INFINITY;
        }

        // Start a new service if the server is idle.
        if in_service.is_none() {
            let next_class = (0..n)
                .filter(|&c| !queues[c].is_empty())
                .min_by_key(|&c| rank[c]);
            if let Some(c) = next_class {
                queues[c].pop_front();
                let service = network.services[c].sample(rng);
                completion = clock + service;
                in_service = Some(c);
            }
        }
    }

    let mean_number: Vec<f64> = trackers.iter().map(|tr| tr.time_average(horizon)).collect();
    let holding_cost_rate = mean_number
        .iter()
        .zip(&network.holding_costs)
        .map(|(l, c)| l * c)
        .sum();
    KlimovSimResult {
        mean_number,
        holding_cost_rate,
        services_completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ss_distributions::{dyn_dist, Erlang, Exponential};

    fn no_feedback_network() -> KlimovNetwork {
        KlimovNetwork::new(
            vec![0.2, 0.3, 0.1],
            vec![
                dyn_dist(Exponential::with_mean(1.0)),
                dyn_dist(Exponential::with_mean(0.5)),
                dyn_dist(Erlang::with_mean(2, 0.5)),
            ],
            vec![1.0, 3.0, 2.0],
            vec![vec![0.0; 3]; 3],
        )
    }

    fn feedback_network() -> KlimovNetwork {
        // Class 0 jobs return as class 1 with probability 0.6; class 1 jobs
        // return as class 2 with probability 0.3; class 2 jobs always leave.
        KlimovNetwork::new(
            vec![0.25, 0.1, 0.05],
            vec![
                dyn_dist(Exponential::with_mean(0.8)),
                dyn_dist(Exponential::with_mean(0.6)),
                dyn_dist(Exponential::with_mean(1.2)),
            ],
            vec![1.0, 2.0, 4.0],
            vec![
                vec![0.0, 0.6, 0.0],
                vec![0.0, 0.0, 0.3],
                vec![0.0, 0.0, 0.0],
            ],
        )
    }

    #[test]
    fn effective_rates_account_for_feedback() {
        let net = feedback_network();
        let gamma = net.effective_arrival_rates();
        assert!((gamma[0] - 0.25).abs() < 1e-12);
        assert!((gamma[1] - (0.1 + 0.25 * 0.6)).abs() < 1e-12);
        assert!((gamma[2] - (0.05 + gamma[1] * 0.3)).abs() < 1e-12);
        assert!(net.total_load() < 1.0);
    }

    #[test]
    fn no_feedback_reduces_to_cmu() {
        let net = no_feedback_network();
        let idx = klimov_indices(&net);
        let expected = [1.0 / 1.0, 3.0 / 0.5, 2.0 / 0.5];
        for (i, &e) in expected.iter().enumerate() {
            assert!((idx[i] - e).abs() < 1e-9, "class {i}: {} vs {e}", idx[i]);
        }
        assert_eq!(klimov_order(&net), vec![1, 2, 0]);
    }

    #[test]
    fn feedback_raises_priority_of_upstream_classes() {
        // Class 0 feeds an expensive downstream class; with the feedback
        // "captured" in the continuation set its index should exceed the
        // plain cµ value of class 0 alone... at minimum, the indices are
        // finite, positive, and the assignment covers every class.
        let net = feedback_network();
        let idx = klimov_indices(&net);
        assert!(idx.iter().all(|g| g.is_finite() && *g > 0.0), "{idx:?}");
    }

    #[test]
    fn klimov_order_is_best_among_all_priority_orders_by_simulation() {
        // E12: simulate every static priority order of the 3-class feedback
        // network; the Klimov order's holding cost must be within noise of
        // the best.
        let net = feedback_network();
        let orders: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        let mut costs = Vec::new();
        for (i, order) in orders.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(100 + i as u64);
            let res = simulate_klimov(&net, order, 150_000.0, 5_000.0, &mut rng);
            costs.push(res.holding_cost_rate);
        }
        let best = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let klimov = klimov_order(&net);
        let pos = orders
            .iter()
            .position(|o| *o == klimov)
            .expect("klimov order is a permutation");
        assert!(
            costs[pos] <= best * 1.06,
            "Klimov order {klimov:?} cost {} vs best {best} (all: {costs:?})",
            costs[pos]
        );
    }

    #[test]
    fn simulation_mean_numbers_match_mg1_for_no_feedback() {
        // With no feedback the Klimov simulator is an ordinary multiclass
        // M/G/1; check against Cobham.
        let net = no_feedback_network();
        let order = vec![1usize, 2, 0];
        let classes: Vec<ss_core::job::JobClass> = (0..3)
            .map(|i| {
                ss_core::job::JobClass::new(
                    i,
                    net.arrival_rates[i],
                    net.services[i].clone(),
                    net.holding_costs[i],
                )
            })
            .collect();
        let exact = crate::cobham::mg1_nonpreemptive_priority(&classes, &order);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let sim = simulate_klimov(&net, &order, 120_000.0, 4_000.0, &mut rng);
        for i in 0..3 {
            assert!(
                (sim.mean_number[i] - exact.number_in_system[i]).abs() / exact.number_in_system[i]
                    < 0.12,
                "class {i}: sim {} vs exact {}",
                sim.mean_number[i],
                exact.number_in_system[i]
            );
        }
    }

    #[test]
    #[should_panic]
    fn routing_rows_must_be_substochastic() {
        let _ = KlimovNetwork::new(
            vec![0.1],
            vec![dyn_dist(Exponential::new(1.0))],
            vec![1.0],
            vec![vec![1.5]],
        );
    }
}

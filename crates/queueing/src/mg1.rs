//! Event-driven simulator for the multiclass M/G/1 queue.
//!
//! Supports FIFO, nonpreemptive static priority and preemptive-resume
//! static priority disciplines; reports time-average queue lengths per
//! class (with warm-up deletion), mean waiting times of completed jobs and
//! the steady-state holding-cost rate.  Experiment E11 calibrates this
//! simulator against the exact Cobham / Pollaczek–Khinchine formulas of
//! [`crate::cobham`] and then uses it for the disciplines the formulas do
//! not cover.

use crate::sampling::sample_exp;
use rand::RngCore;
use ss_core::job::JobClass;
use ss_sim::stats::TimeWeighted;
use std::collections::VecDeque;

/// Service discipline of the single server.
#[derive(Debug, Clone)]
pub enum Discipline {
    /// First-in-first-out across all classes.
    Fifo,
    /// Nonpreemptive static priority; the vector lists class indices from
    /// highest to lowest priority.
    NonpreemptivePriority(Vec<usize>),
    /// Preemptive-resume static priority (same encoding).
    PreemptivePriority(Vec<usize>),
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct Mg1Config {
    /// The job classes (arrival rates, service distributions, holding costs).
    pub classes: Vec<JobClass>,
    /// Service discipline.
    pub discipline: Discipline,
    /// Simulated time horizon.
    pub horizon: f64,
    /// Warm-up period excluded from the time averages.
    pub warmup: f64,
}

/// Steady-state estimates from one simulation run.
#[derive(Debug, Clone)]
pub struct Mg1Result {
    /// Time-average number in system per class.
    pub mean_number: Vec<f64>,
    /// Mean waiting time (excluding service) of completed jobs per class.
    pub mean_wait: Vec<f64>,
    /// `Σ_j c_j * mean_number[j]`.
    pub holding_cost_rate: f64,
    /// Number of completed jobs per class (after warm-up).
    pub completed: Vec<u64>,
}

#[derive(Debug, Clone)]
struct Customer {
    class: usize,
    arrival_time: f64,
    total_service: f64,
    remaining_service: f64,
}

/// Simulate one run of the multiclass M/G/1 queue.
pub fn simulate_mg1(config: &Mg1Config, rng: &mut dyn RngCore) -> Mg1Result {
    let n_classes = config.classes.len();
    assert!(n_classes > 0);
    assert!(config.horizon > config.warmup && config.warmup >= 0.0);

    // Priority rank per class (lower = served first); FIFO ignores it.
    let rank: Vec<usize> = match &config.discipline {
        Discipline::Fifo => vec![0; n_classes],
        Discipline::NonpreemptivePriority(order) | Discipline::PreemptivePriority(order) => {
            assert_eq!(order.len(), n_classes);
            let mut r = vec![0usize; n_classes];
            for (pos, &c) in order.iter().enumerate() {
                r[c] = pos;
            }
            r
        }
    };
    let preemptive = matches!(config.discipline, Discipline::PreemptivePriority(_));
    let fifo = matches!(config.discipline, Discipline::Fifo);

    // Per-class waiting queues (FIFO uses a single global queue keyed by arrival order).
    let mut queues: Vec<VecDeque<Customer>> = vec![VecDeque::new(); n_classes];
    let mut fifo_queue: VecDeque<Customer> = VecDeque::new();

    // Next arrival time per class.
    let mut next_arrival: Vec<f64> = config
        .classes
        .iter()
        .map(|c| {
            if c.arrival_rate > 0.0 {
                sample_exp(rng, c.arrival_rate)
            } else {
                f64::INFINITY
            }
        })
        .collect();

    let mut in_service: Option<Customer> = None;
    let mut service_completion = f64::INFINITY;
    let mut clock = 0.0;
    let mut number_trackers: Vec<TimeWeighted> = (0..n_classes)
        .map(|_| TimeWeighted::new(0.0, 0.0))
        .collect();
    let mut counts = vec![0usize; n_classes];
    let mut warmup_done = false;

    let mut wait_sum = vec![0.0; n_classes];
    let mut completed = vec![0u64; n_classes];

    let update_count =
        |trackers: &mut Vec<TimeWeighted>, counts: &[usize], class: usize, time: f64| {
            trackers[class].update(time, counts[class] as f64);
        };

    loop {
        // Next event: earliest arrival or the service completion.
        let (min_class, min_arrival) = next_arrival
            .iter()
            .cloned()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let next_time = min_arrival.min(service_completion);
        if next_time > config.horizon {
            break;
        }
        clock = next_time;
        if !warmup_done && clock >= config.warmup {
            for t in &mut number_trackers {
                t.update(clock, t.current());
                t.reset(clock);
            }
            warmup_done = true;
        }

        if min_arrival <= service_completion {
            // Arrival of class `min_class`.
            let class = min_class;
            let service = config.classes[class].service.sample(rng);
            let customer = Customer {
                class,
                arrival_time: clock,
                total_service: service,
                remaining_service: service,
            };
            counts[class] += 1;
            update_count(&mut number_trackers, &counts, class, clock);
            next_arrival[class] = clock + sample_exp(rng, config.classes[class].arrival_rate);

            let mut enqueue = Some(customer);
            if in_service.is_none() {
                // Idle server: start immediately.
                let c = enqueue.take().unwrap();
                service_completion = clock + c.remaining_service;
                in_service = Some(c);
            } else if preemptive {
                let current = in_service.as_ref().unwrap();
                if rank[class] < rank[current.class] {
                    // Preempt: requeue the interrupted job with its residual.
                    let mut interrupted = in_service.take().unwrap();
                    interrupted.remaining_service = service_completion - clock;
                    queues[interrupted.class].push_front(interrupted);
                    let c = enqueue.take().unwrap();
                    service_completion = clock + c.remaining_service;
                    in_service = Some(c);
                }
            }
            if let Some(c) = enqueue {
                if fifo {
                    fifo_queue.push_back(c);
                } else {
                    queues[class].push_back(c);
                }
            }
        } else {
            // Service completion.
            let done = in_service
                .take()
                .expect("completion without a job in service");
            let class = done.class;
            counts[class] -= 1;
            update_count(&mut number_trackers, &counts, class, clock);
            if clock >= config.warmup {
                completed[class] += 1;
                wait_sum[class] += (clock - done.arrival_time) - done.total_service;
            }
            // Start the next job, if any.
            let next = if fifo {
                fifo_queue.pop_front()
            } else {
                // Highest-priority nonempty class queue.
                let mut best: Option<usize> = None;
                for c in 0..n_classes {
                    if !queues[c].is_empty() {
                        match best {
                            None => best = Some(c),
                            Some(b) if rank[c] < rank[b] => best = Some(c),
                            _ => {}
                        }
                    }
                }
                best.and_then(|c| queues[c].pop_front())
            };
            match next {
                Some(c) => {
                    service_completion = clock + c.remaining_service;
                    in_service = Some(c);
                }
                None => {
                    service_completion = f64::INFINITY;
                }
            }
        }
    }

    let effective_start = config.warmup.min(clock);
    let span_end = config.horizon.max(effective_start + 1e-9);
    let mean_number: Vec<f64> = number_trackers
        .iter()
        .map(|t| t.time_average(span_end))
        .collect();
    let mean_wait: Vec<f64> = (0..n_classes)
        .map(|c| {
            if completed[c] > 0 {
                wait_sum[c] / completed[c] as f64
            } else {
                0.0
            }
        })
        .collect();
    let holding_cost_rate = config
        .classes
        .iter()
        .enumerate()
        .map(|(c, cl)| cl.holding_cost * mean_number[c])
        .sum();
    Mg1Result {
        mean_number,
        mean_wait,
        holding_cost_rate,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmu::cmu_order;
    use crate::cobham::{
        mg1_nonpreemptive_priority, mg1_preemptive_priority, pollaczek_khinchine_wait,
    };
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ss_distributions::{dyn_dist, Erlang, Exponential};

    fn classes_2() -> Vec<JobClass> {
        vec![
            JobClass::new(0, 0.3, dyn_dist(Exponential::with_mean(1.0)), 1.0),
            JobClass::new(1, 0.25, dyn_dist(Erlang::with_mean(2, 1.2)), 4.0),
        ]
    }

    fn run(classes: Vec<JobClass>, discipline: Discipline, seed: u64) -> Mg1Result {
        let config = Mg1Config {
            classes,
            discipline,
            horizon: 60_000.0,
            warmup: 2_000.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        simulate_mg1(&config, &mut rng)
    }

    #[test]
    fn fifo_matches_pollaczek_khinchine() {
        let classes = classes_2();
        let expected_wait = pollaczek_khinchine_wait(&classes);
        let res = run(classes, Discipline::Fifo, 1);
        for (c, w) in res.mean_wait.iter().enumerate() {
            assert!(
                (w - expected_wait).abs() / expected_wait < 0.08,
                "class {c}: simulated wait {w} vs PK {expected_wait}"
            );
        }
    }

    #[test]
    fn nonpreemptive_priority_matches_cobham() {
        let classes = classes_2();
        let order = vec![1usize, 0];
        let exact = mg1_nonpreemptive_priority(&classes, &order);
        let res = run(classes, Discipline::NonpreemptivePriority(order), 2);
        for c in 0..2 {
            assert!(
                (res.mean_wait[c] - exact.wait[c]).abs() / exact.wait[c] < 0.1,
                "class {c}: simulated {} vs Cobham {}",
                res.mean_wait[c],
                exact.wait[c]
            );
            assert!(
                (res.mean_number[c] - exact.number_in_system[c]).abs() / exact.number_in_system[c]
                    < 0.1,
                "class {c}: simulated L {} vs exact {}",
                res.mean_number[c],
                exact.number_in_system[c]
            );
        }
    }

    #[test]
    fn preemptive_priority_matches_formulas() {
        let classes = classes_2();
        let order = vec![1usize, 0];
        let exact = mg1_preemptive_priority(&classes, &order);
        let res = run(classes, Discipline::PreemptivePriority(order), 3);
        for c in 0..2 {
            assert!(
                (res.mean_number[c] - exact.number_in_system[c]).abs() / exact.number_in_system[c]
                    < 0.1,
                "class {c}: simulated L {} vs exact {}",
                res.mean_number[c],
                exact.number_in_system[c]
            );
        }
    }

    #[test]
    fn cmu_priority_beats_fifo_and_reverse_priority() {
        // E11 in miniature: the cµ order has the lowest simulated holding
        // cost rate among {cmu, reverse cmu, FIFO}.
        let classes = classes_2();
        let cmu = cmu_order(&classes);
        let mut reverse = cmu.clone();
        reverse.reverse();
        let res_cmu = run(classes.clone(), Discipline::NonpreemptivePriority(cmu), 4);
        let res_rev = run(
            classes.clone(),
            Discipline::NonpreemptivePriority(reverse),
            4,
        );
        let res_fifo = run(classes, Discipline::Fifo, 4);
        assert!(res_cmu.holding_cost_rate < res_rev.holding_cost_rate);
        assert!(res_cmu.holding_cost_rate < res_fifo.holding_cost_rate);
    }

    #[test]
    fn little_law_consistency() {
        // lambda * (W + E[S]) should match the time-average number in system.
        let classes = classes_2();
        let res = run(classes.clone(), Discipline::Fifo, 5);
        for (c, cl) in classes.iter().enumerate() {
            let little = cl.arrival_rate * (res.mean_wait[c] + cl.mean_service());
            assert!(
                (little - res.mean_number[c]).abs() / res.mean_number[c] < 0.1,
                "class {c}: Little {little} vs tracked {}",
                res.mean_number[c]
            );
        }
    }

    #[test]
    fn empty_arrival_class_is_harmless() {
        let classes = vec![
            JobClass::new(0, 0.5, dyn_dist(Exponential::with_mean(1.0)), 1.0),
            JobClass::new(1, 0.0, dyn_dist(Exponential::with_mean(1.0)), 1.0),
        ];
        let res = run(classes, Discipline::Fifo, 6);
        assert_eq!(res.completed[1], 0);
        assert!(res.mean_number[1].abs() < 1e-9);
    }
}

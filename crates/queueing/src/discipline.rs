//! Adapters from this crate's index policies onto the common
//! [`ss_core::discipline::Discipline`] trait used by the service fabric.
//!
//! Not to be confused with [`crate::mg1::Discipline`], the closed
//! three-variant enum of the single-station M/G/1 simulator: the trait here
//! is the open, pluggable contract a multi-server fabric tier ranks its
//! queues with.

use ss_core::discipline::StaticIndex;
use ss_core::job::JobClass;

use crate::cmu::cmu_indices;

/// The cµ rule as a fabric discipline: classes ranked by `c_j · µ_j`
/// (Cox–Smith; optimal for the nonpreemptive multiclass M/G/1 with linear
/// holding costs).
pub fn cmu_discipline(classes: &[JobClass]) -> StaticIndex {
    StaticIndex::new("cmu", cmu_indices(classes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_core::discipline::Discipline;
    use ss_distributions::{dyn_dist, Exponential};

    #[test]
    fn cmu_discipline_ranks_by_c_times_mu() {
        let classes = vec![
            JobClass::new(0, 0.1, dyn_dist(Exponential::with_mean(1.0)), 1.0), // cµ = 1
            JobClass::new(1, 0.1, dyn_dist(Exponential::with_mean(0.25)), 1.0), // cµ = 4
            JobClass::new(2, 0.1, dyn_dist(Exponential::with_mean(1.0)), 2.5), // cµ = 2.5
        ];
        let d = cmu_discipline(&classes);
        assert_eq!(d.name(), "cmu");
        assert!(d.class_index(1, 1) > d.class_index(2, 1));
        assert!(d.class_index(2, 5) > d.class_index(0, 5));
        // Static rule: the queue length does not move the index.
        assert_eq!(
            d.class_index(1, 1).to_bits(),
            d.class_index(1, 50).to_bits()
        );
    }
}

//! Open multiclass queueing networks with multiple single-server stations.
//!
//! The general substrate behind the stability (E14) and fluid (E15)
//! experiments: each class is served at a fixed station, has its own
//! service-time distribution and holding cost, receives external Poisson
//! arrivals, and routes deterministically or probabilistically to another
//! class (or leaves) after service.  Every station runs a nonpreemptive
//! static priority discipline over the classes it serves.

use crate::sampling::sample_exp;
use rand::RngCore;
use ss_distributions::DynDist;
use ss_sim::stats::TimeWeighted;
use std::collections::VecDeque;

/// A class of a multiclass network.
#[derive(Clone)]
pub struct NetworkClass {
    /// Station (server) that processes this class.
    pub station: usize,
    /// External Poisson arrival rate (0 for purely internal classes).
    pub arrival_rate: f64,
    /// Service-time distribution.
    pub service: DynDist,
    /// Holding-cost rate.
    pub holding_cost: f64,
    /// Routing row: `(next_class, probability)`; the unassigned mass leaves
    /// the system.
    pub routing: Vec<(usize, f64)>,
}

impl std::fmt::Debug for NetworkClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkClass")
            .field("station", &self.station)
            .field("arrival_rate", &self.arrival_rate)
            .field("holding_cost", &self.holding_cost)
            .field("routing", &self.routing)
            .finish()
    }
}

/// An open multiclass network.
#[derive(Debug, Clone)]
pub struct MultiClassNetwork {
    /// The classes.
    pub classes: Vec<NetworkClass>,
    /// Number of stations.
    pub num_stations: usize,
}

impl MultiClassNetwork {
    /// Create a network, validating stations and routing rows.
    pub fn new(classes: Vec<NetworkClass>) -> Self {
        assert!(!classes.is_empty());
        let num_stations = classes.iter().map(|c| c.station).max().unwrap() + 1;
        for (k, c) in classes.iter().enumerate() {
            let total: f64 = c.routing.iter().map(|(_, p)| p).sum();
            assert!(total <= 1.0 + 1e-9, "class {k} routing mass {total} > 1");
            assert!(c
                .routing
                .iter()
                .all(|&(j, p)| j < classes.len() && p >= -1e-12));
            assert!(c.arrival_rate >= 0.0 && c.holding_cost >= 0.0);
        }
        Self {
            classes,
            num_stations,
        }
    }

    /// Effective arrival rate per class (external + internal), solving the
    /// traffic equations.
    pub fn effective_rates(&self) -> Vec<f64> {
        let n = self.classes.len();
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            a[i][i] = 1.0;
        }
        for (i, c) in self.classes.iter().enumerate() {
            for &(j, p) in &c.routing {
                a[j][i] -= p;
            }
        }
        let b: Vec<f64> = self.classes.iter().map(|c| c.arrival_rate).collect();
        ss_core::linalg::solve_dense(a, b)
    }

    /// Nominal load per station `ρ_s = Σ_{k at s} γ_k E[S_k]`.
    pub fn station_loads(&self) -> Vec<f64> {
        let gamma = self.effective_rates();
        let mut loads = vec![0.0; self.num_stations];
        for (k, c) in self.classes.iter().enumerate() {
            loads[c.station] += gamma[k] * c.service.mean();
        }
        loads
    }
}

/// Result of one network simulation run.
#[derive(Debug, Clone)]
pub struct NetworkSimResult {
    /// Time-average number in system per class (after warm-up).
    pub mean_number: Vec<f64>,
    /// Time-average holding-cost rate.
    pub holding_cost_rate: f64,
    /// Sampled trajectory of the *total* number in system
    /// (`trajectory[i]` is the total at time `sample_times[i]`).
    pub trajectory: Vec<f64>,
    /// Sampling instants of the trajectory.
    pub sample_times: Vec<f64>,
    /// Total number in system at the end of the run.
    pub final_total: usize,
}

/// Simulate the network under per-station nonpreemptive priority orders.
///
/// `station_priority[s]` lists the classes of station `s` from highest to
/// lowest priority (classes of other stations are ignored); classes absent
/// from the list get lowest priority in index order.
pub fn simulate_network(
    network: &MultiClassNetwork,
    station_priority: &[Vec<usize>],
    horizon: f64,
    warmup: f64,
    num_samples: usize,
    rng: &mut dyn RngCore,
) -> NetworkSimResult {
    use rand::Rng;
    let n = network.classes.len();
    let s_count = network.num_stations;
    assert_eq!(station_priority.len(), s_count);
    assert!(horizon > warmup && num_samples >= 2);

    // Per-class priority rank within its station.
    let mut rank = vec![usize::MAX; n];
    for (s, order) in station_priority.iter().enumerate() {
        for (pos, &k) in order.iter().enumerate() {
            assert_eq!(
                network.classes[k].station, s,
                "class {k} is not served at station {s}"
            );
            rank[k] = pos;
        }
    }
    for (k, r) in rank.iter_mut().enumerate() {
        if *r == usize::MAX {
            *r = 1000 + k;
        }
    }

    let mut queues: Vec<VecDeque<f64>> = vec![VecDeque::new(); n];
    let mut next_arrival: Vec<f64> = network
        .classes
        .iter()
        .map(|c| {
            if c.arrival_rate > 0.0 {
                sample_exp(rng, c.arrival_rate)
            } else {
                f64::INFINITY
            }
        })
        .collect();
    // Per-station in-service class and completion time.
    let mut in_service: Vec<Option<usize>> = vec![None; s_count];
    let mut completion: Vec<f64> = vec![f64::INFINITY; s_count];
    let mut counts = vec![0usize; n];
    let mut trackers: Vec<TimeWeighted> = (0..n).map(|_| TimeWeighted::new(0.0, 0.0)).collect();
    let mut warmup_done = false;

    let sample_dt = horizon / (num_samples - 1) as f64;
    let mut next_sample = 0.0;
    let mut sample_times = Vec::with_capacity(num_samples);
    let mut trajectory = Vec::with_capacity(num_samples);

    let mut clock;
    loop {
        let (arr_class, arr_time) = next_arrival
            .iter()
            .cloned()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let (comp_station, comp_time) = completion
            .iter()
            .cloned()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let t = arr_time.min(comp_time);
        if t > horizon {
            break;
        }
        // Record trajectory samples that fall before the next event.
        while next_sample <= t && sample_times.len() < num_samples {
            sample_times.push(next_sample);
            trajectory.push(counts.iter().sum::<usize>() as f64);
            next_sample += sample_dt;
        }
        clock = t;
        if !warmup_done && clock >= warmup {
            for tr in &mut trackers {
                tr.update(clock, tr.current());
                tr.reset(clock);
            }
            warmup_done = true;
        }

        if arr_time <= comp_time {
            counts[arr_class] += 1;
            trackers[arr_class].update(clock, counts[arr_class] as f64);
            queues[arr_class].push_back(clock);
            next_arrival[arr_class] =
                clock + sample_exp(rng, network.classes[arr_class].arrival_rate);
        } else {
            let class = in_service[comp_station]
                .take()
                .expect("completion without service");
            completion[comp_station] = f64::INFINITY;
            counts[class] -= 1;
            trackers[class].update(clock, counts[class] as f64);
            // Route.
            let u: f64 = rng.gen::<f64>();
            let mut acc = 0.0;
            for &(j, p) in &network.classes[class].routing {
                acc += p;
                if u <= acc {
                    counts[j] += 1;
                    trackers[j].update(clock, counts[j] as f64);
                    queues[j].push_back(clock);
                    break;
                }
            }
        }

        // Start service at every idle station with waiting work.
        for s in 0..s_count {
            if in_service[s].is_some() {
                continue;
            }
            let next_class = (0..n)
                .filter(|&k| network.classes[k].station == s && !queues[k].is_empty())
                .min_by_key(|&k| rank[k]);
            if let Some(k) = next_class {
                queues[k].pop_front();
                let service = network.classes[k].service.sample(rng);
                in_service[s] = Some(k);
                completion[s] = clock + service;
            }
        }
    }
    while sample_times.len() < num_samples {
        sample_times.push(next_sample);
        trajectory.push(counts.iter().sum::<usize>() as f64);
        next_sample += sample_dt;
    }

    let mean_number: Vec<f64> = trackers.iter().map(|tr| tr.time_average(horizon)).collect();
    let holding_cost_rate = mean_number
        .iter()
        .zip(&network.classes)
        .map(|(l, c)| l * c.holding_cost)
        .sum();
    NetworkSimResult {
        mean_number,
        holding_cost_rate,
        trajectory,
        sample_times,
        final_total: counts.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ss_distributions::{dyn_dist, Exponential};

    /// A two-class tandem line: class 0 at station 0 feeds class 1 at
    /// station 1, both exponential.
    fn tandem() -> MultiClassNetwork {
        MultiClassNetwork::new(vec![
            NetworkClass {
                station: 0,
                arrival_rate: 0.5,
                service: dyn_dist(Exponential::with_mean(1.0)),
                holding_cost: 1.0,
                routing: vec![(1, 1.0)],
            },
            NetworkClass {
                station: 1,
                arrival_rate: 0.0,
                service: dyn_dist(Exponential::with_mean(1.2)),
                holding_cost: 1.0,
                routing: vec![],
            },
        ])
    }

    #[test]
    fn traffic_equations_for_tandem() {
        let net = tandem();
        let gamma = net.effective_rates();
        assert!((gamma[0] - 0.5).abs() < 1e-12);
        assert!((gamma[1] - 0.5).abs() < 1e-12);
        let loads = net.station_loads();
        assert!((loads[0] - 0.5).abs() < 1e-12);
        assert!((loads[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn tandem_matches_jackson_product_form() {
        // Both stations behave as independent M/M/1 queues (Jackson):
        // L0 = 0.5/0.5 = 1, L1 = 0.6/0.4 = 1.5.
        let net = tandem();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let res = simulate_network(&net, &[vec![0], vec![1]], 120_000.0, 4_000.0, 50, &mut rng);
        assert!(
            (res.mean_number[0] - 1.0).abs() < 0.12,
            "L0 = {}",
            res.mean_number[0]
        );
        assert!(
            (res.mean_number[1] - 1.5).abs() < 0.2,
            "L1 = {}",
            res.mean_number[1]
        );
    }

    #[test]
    fn trajectory_is_sampled_on_schedule() {
        let net = tandem();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let res = simulate_network(&net, &[vec![0], vec![1]], 1_000.0, 0.0, 11, &mut rng);
        assert_eq!(res.sample_times.len(), 11);
        assert_eq!(res.trajectory.len(), 11);
        assert!((res.sample_times[10] - 1000.0).abs() < 101.0);
    }

    #[test]
    #[should_panic]
    fn priority_list_must_match_station() {
        let net = tandem();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Class 1 does not live at station 0.
        let _ = simulate_network(&net, &[vec![1], vec![0]], 100.0, 0.0, 5, &mut rng);
    }
}

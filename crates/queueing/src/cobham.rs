//! Exact steady-state formulas for the multiclass M/G/1 queue.
//!
//! * [`pollaczek_khinchine_wait`] — the P-K mean waiting time of the FIFO
//!   M/G/1 queue.
//! * [`mg1_nonpreemptive_priority`] — Cobham's formulas for the mean waiting
//!   time of each class under a static nonpreemptive priority order.
//! * [`mg1_preemptive_priority`] — the classical preemptive-resume priority
//!   formulas.
//!
//! These are the exact evaluations behind experiment E11: every static
//! priority order of a small instance can be scored exactly, which both
//! verifies the cµ-rule's optimality and calibrates the simulator in
//! [`crate::mg1`].

use ss_core::job::JobClass;

/// Traffic intensity of a set of classes.
pub fn total_load(classes: &[JobClass]) -> f64 {
    classes.iter().map(|c| c.load()).sum()
}

/// Mean residual-work contribution `W0 = Σ_j λ_j E[S_j^2] / 2`.
pub fn mean_residual_work(classes: &[JobClass]) -> f64 {
    classes
        .iter()
        .map(|c| c.arrival_rate * c.service.second_moment() / 2.0)
        .sum()
}

/// Pollaczek–Khinchine: mean waiting time (excluding service) of the FIFO
/// M/G/1 queue.  Requires total load < 1.
pub fn pollaczek_khinchine_wait(classes: &[JobClass]) -> f64 {
    let rho = total_load(classes);
    assert!(rho < 1.0, "queue is unstable (rho = {rho})");
    mean_residual_work(classes) / (1.0 - rho)
}

/// Per-class steady-state summary from the exact formulas.
#[derive(Debug, Clone)]
pub struct PriorityQueueMeans {
    /// Mean waiting time in queue (excluding service) per class, in the
    /// *original* class order.
    pub wait: Vec<f64>,
    /// Mean number in system per class (Little's law: `λ (W + E[S])`).
    pub number_in_system: Vec<f64>,
    /// Steady-state holding-cost rate `Σ_j c_j E[L_j]`.
    pub holding_cost_rate: f64,
}

/// Cobham's formulas for a **nonpreemptive** static priority order.
///
/// `priority_order[0]` is the highest-priority class (index into `classes`).
pub fn mg1_nonpreemptive_priority(
    classes: &[JobClass],
    priority_order: &[usize],
) -> PriorityQueueMeans {
    assert_eq!(priority_order.len(), classes.len());
    let rho = total_load(classes);
    assert!(rho < 1.0, "queue is unstable (rho = {rho})");
    let w0 = mean_residual_work(classes);

    let mut wait = vec![0.0; classes.len()];
    let mut sigma_prev = 0.0;
    for (rank, &k) in priority_order.iter().enumerate() {
        let sigma_k = sigma_prev + classes[k].load();
        // Cobham: W_k = W0 / ((1 - sigma_{k-1})(1 - sigma_k)).
        wait[k] = w0 / ((1.0 - sigma_prev) * (1.0 - sigma_k));
        sigma_prev = sigma_k;
        let _ = rank;
    }
    let number_in_system: Vec<f64> = classes
        .iter()
        .enumerate()
        .map(|(k, c)| c.arrival_rate * (wait[k] + c.mean_service()))
        .collect();
    let holding_cost_rate = classes
        .iter()
        .enumerate()
        .map(|(k, c)| c.holding_cost * number_in_system[k])
        .sum();
    PriorityQueueMeans {
        wait,
        number_in_system,
        holding_cost_rate,
    }
}

/// Classical **preemptive-resume** priority formulas for the M/G/1 queue.
///
/// The mean time in system of a class with priority rank `k` (rank 0
/// highest) is
///
/// ```text
/// T_k = E[S_k] / (1 - σ_{k-1})
///     + Σ_{i <= k} λ_i E[S_i^2] / (2 (1 - σ_{k-1})(1 - σ_k))
/// ```
///
/// where `σ_k` is the load of the classes with rank `<= k`.
pub fn mg1_preemptive_priority(
    classes: &[JobClass],
    priority_order: &[usize],
) -> PriorityQueueMeans {
    assert_eq!(priority_order.len(), classes.len());
    let rho = total_load(classes);
    assert!(rho < 1.0, "queue is unstable (rho = {rho})");

    let mut time_in_system = vec![0.0; classes.len()];
    let mut sigma_prev = 0.0;
    let mut residual_prefix = 0.0;
    for &k in priority_order {
        let sigma_k = sigma_prev + classes[k].load();
        residual_prefix += classes[k].arrival_rate * classes[k].service.second_moment() / 2.0;
        time_in_system[k] = classes[k].mean_service() / (1.0 - sigma_prev)
            + residual_prefix / ((1.0 - sigma_prev) * (1.0 - sigma_k));
        sigma_prev = sigma_k;
    }
    let wait: Vec<f64> = classes
        .iter()
        .enumerate()
        .map(|(k, c)| time_in_system[k] - c.mean_service())
        .collect();
    let number_in_system: Vec<f64> = classes
        .iter()
        .enumerate()
        .map(|(k, c)| c.arrival_rate * time_in_system[k])
        .collect();
    let holding_cost_rate = classes
        .iter()
        .enumerate()
        .map(|(k, c)| c.holding_cost * number_in_system[k])
        .sum();
    PriorityQueueMeans {
        wait,
        number_in_system,
        holding_cost_rate,
    }
}

/// Evaluate every static priority order exactly and return
/// `(best_order, best_cost)` for the nonpreemptive model.
/// Intended for up to ~7 classes.
pub fn best_nonpreemptive_order(classes: &[JobClass]) -> (Vec<usize>, f64) {
    let n = classes.len();
    assert!(n <= 8, "exhaustive order search limited to 8 classes");
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best_order = perm.clone();
    let mut best_cost = mg1_nonpreemptive_priority(classes, &perm).holding_cost_rate;
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            let cost = mg1_nonpreemptive_priority(classes, &perm).holding_cost_rate;
            if cost < best_cost {
                best_cost = cost;
                best_order = perm.clone();
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    (best_order, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmu::cmu_order;
    use ss_distributions::{dyn_dist, Deterministic, Exponential};

    fn classes_3() -> Vec<JobClass> {
        vec![
            JobClass::new(0, 0.2, dyn_dist(Exponential::with_mean(1.0)), 1.0),
            JobClass::new(1, 0.3, dyn_dist(Exponential::with_mean(0.5)), 3.0),
            JobClass::new(2, 0.1, dyn_dist(Exponential::with_mean(2.0)), 2.0),
        ]
    }

    #[test]
    fn pollaczek_khinchine_md1_and_mm1() {
        // M/M/1: W = rho / (mu - lambda); M/D/1 waits are half as long.
        let mm1 = vec![JobClass::new(
            0,
            0.5,
            dyn_dist(Exponential::with_mean(1.0)),
            1.0,
        )];
        let w = pollaczek_khinchine_wait(&mm1);
        assert!((w - 1.0).abs() < 1e-12, "M/M/1 wait {w}");
        let md1 = vec![JobClass::new(
            0,
            0.5,
            dyn_dist(Deterministic::new(1.0)),
            1.0,
        )];
        let w_d = pollaczek_khinchine_wait(&md1);
        assert!((w_d - 0.5).abs() < 1e-12, "M/D/1 wait {w_d}");
    }

    #[test]
    fn single_class_priority_reduces_to_pk() {
        let classes = vec![JobClass::new(
            0,
            0.4,
            dyn_dist(Exponential::with_mean(1.5)),
            2.0,
        )];
        let res = mg1_nonpreemptive_priority(&classes, &[0]);
        assert!((res.wait[0] - pollaczek_khinchine_wait(&classes)).abs() < 1e-12);
    }

    #[test]
    fn high_priority_class_waits_less() {
        let classes = classes_3();
        let res = mg1_nonpreemptive_priority(&classes, &[1, 0, 2]);
        assert!(res.wait[1] < res.wait[0]);
        assert!(res.wait[0] < res.wait[2]);
    }

    #[test]
    fn cmu_order_minimises_holding_cost_exactly() {
        // E11: the cµ priority order attains the exhaustive best cost.
        let classes = classes_3();
        let (best_order, best_cost) = best_nonpreemptive_order(&classes);
        let cmu = cmu_order(&classes);
        let cmu_cost = mg1_nonpreemptive_priority(&classes, &cmu).holding_cost_rate;
        assert!(
            (cmu_cost - best_cost).abs() < 1e-9,
            "cmu order {cmu:?} cost {cmu_cost} vs best {best_order:?} cost {best_cost}"
        );
    }

    #[test]
    fn preemptive_highest_class_sees_clean_mm1() {
        // Under preemptive priority the top class behaves as if alone.
        let classes = classes_3();
        let res = mg1_preemptive_priority(&classes, &[1, 0, 2]);
        let solo = vec![classes[1].clone()];
        let solo_wait = pollaczek_khinchine_wait(&solo);
        let t1 = res.wait[1] + classes[1].mean_service();
        let solo_t = solo_wait + classes[1].mean_service();
        assert!(
            (t1 - solo_t).abs() < 1e-9,
            "top class T {t1} vs solo {solo_t}"
        );
    }

    #[test]
    fn preemptive_beats_nonpreemptive_for_top_class() {
        let classes = classes_3();
        let order = [1usize, 0, 2];
        let np = mg1_nonpreemptive_priority(&classes, &order);
        let pr = mg1_preemptive_priority(&classes, &order);
        assert!(pr.wait[1] <= np.wait[1] + 1e-12);
    }

    #[test]
    #[should_panic]
    fn unstable_load_is_rejected() {
        let classes = vec![JobClass::new(
            0,
            2.0,
            dyn_dist(Exponential::with_mean(1.0)),
            1.0,
        )];
        let _ = pollaczek_khinchine_wait(&classes);
    }
}

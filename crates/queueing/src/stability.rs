//! The stability problem for multiclass networks (experiment E14).
//!
//! The survey highlights that for multi-station multiclass networks "in
//! general it is not known what conditions on model parameters ensure that
//! a given policy is stable", citing Bramson's FIFO instability example.
//! The canonical parameterisation exhibiting the phenomenon is the
//! Lu–Kumar (and Rybko–Stolyar) network: two stations, four classes routed
//! `1 → 2 → 3 → 4`, classes 1 and 4 at station A, classes 2 and 3 at
//! station B.  When both stations give priority to the *later* classes
//! (4 over 1, 2 over 3) the two priority classes form a "virtual station":
//! if `ρ_virtual = λ (E[S_2] + E[S_4]) > 1` the network is unstable even
//! though each physical station satisfies `ρ < 1`.
//!
//! This module builds the parameterised network and runs the two policies
//! ("bad" priority vs. first-class-first priority) side by side so the
//! experiment harness can print the diverging vs. stable queue-length
//! trajectories.

use crate::network::{simulate_network, MultiClassNetwork, NetworkClass, NetworkSimResult};
use rand::RngCore;
use ss_distributions::{dyn_dist, Exponential};

/// Parameters of the Lu–Kumar network.
#[derive(Debug, Clone, Copy)]
pub struct LuKumarParams {
    /// External arrival rate to class 1.
    pub arrival_rate: f64,
    /// Mean service times of classes 1..=4.
    pub mean_service: [f64; 4],
}

impl Default for LuKumarParams {
    fn default() -> Self {
        // The classic destabilising choice: station loads are 0.7 each but
        // the virtual station load is 1.2 > 1.
        Self {
            arrival_rate: 1.0,
            mean_service: [0.1, 0.6, 0.1, 0.6],
        }
    }
}

impl LuKumarParams {
    /// Per-station nominal loads `(rho_A, rho_B)`.
    pub fn station_loads(&self) -> (f64, f64) {
        let l = self.arrival_rate;
        (
            l * (self.mean_service[0] + self.mean_service[3]),
            l * (self.mean_service[1] + self.mean_service[2]),
        )
    }

    /// The "virtual station" load `λ (E[S_2] + E[S_4])` that governs the
    /// instability of the bad priority policy.
    pub fn virtual_station_load(&self) -> f64 {
        self.arrival_rate * (self.mean_service[1] + self.mean_service[3])
    }

    /// Build the four-class network (exponential services).
    pub fn build(&self) -> MultiClassNetwork {
        let mk = |station: usize, arrival: f64, mean: f64, route: Vec<(usize, f64)>| NetworkClass {
            station,
            arrival_rate: arrival,
            service: dyn_dist(Exponential::with_mean(mean)),
            holding_cost: 1.0,
            routing: route,
        };
        MultiClassNetwork::new(vec![
            mk(0, self.arrival_rate, self.mean_service[0], vec![(1, 1.0)]),
            mk(1, 0.0, self.mean_service[1], vec![(2, 1.0)]),
            mk(1, 0.0, self.mean_service[2], vec![(3, 1.0)]),
            mk(0, 0.0, self.mean_service[3], vec![]),
        ])
    }

    /// The destabilising priority assignment: station A prefers class 4
    /// (index 3), station B prefers class 2 (index 1).
    pub fn bad_priority(&self) -> Vec<Vec<usize>> {
        vec![vec![3, 0], vec![1, 2]]
    }

    /// A stabilising priority assignment (first-buffer-first-served).
    pub fn good_priority(&self) -> Vec<Vec<usize>> {
        vec![vec![0, 3], vec![2, 1]]
    }
}

/// Outcome of the stability experiment for one policy.
#[derive(Debug, Clone)]
pub struct StabilityRun {
    /// Policy label.
    pub label: String,
    /// Queue-length trajectory samples.
    pub result: NetworkSimResult,
    /// Least-squares growth rate of the total queue length per unit time
    /// (positive and large for an unstable run).
    pub growth_rate: f64,
}

fn growth_rate(times: &[f64], totals: &[f64]) -> f64 {
    // Simple least-squares slope.
    let n = times.len() as f64;
    let mean_t = times.iter().sum::<f64>() / n;
    let mean_x = totals.iter().sum::<f64>() / n;
    let num: f64 = times
        .iter()
        .zip(totals)
        .map(|(t, x)| (t - mean_t) * (x - mean_x))
        .sum();
    let den: f64 = times.iter().map(|t| (t - mean_t) * (t - mean_t)).sum();
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Run the Lu–Kumar stability experiment for one priority assignment.
pub fn run_lu_kumar(
    params: &LuKumarParams,
    priority: &[Vec<usize>],
    label: &str,
    horizon: f64,
    rng: &mut dyn RngCore,
) -> StabilityRun {
    let network = params.build();
    let result = simulate_network(&network, priority, horizon, 0.0, 200, rng);
    let growth = growth_rate(&result.sample_times, &result.trajectory);
    StabilityRun {
        label: label.to_string(),
        result,
        growth_rate: growth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn default_parameters_satisfy_the_instability_conditions() {
        let p = LuKumarParams::default();
        let (rho_a, rho_b) = p.station_loads();
        assert!(rho_a < 1.0 && rho_b < 1.0, "both stations nominally stable");
        assert!(p.virtual_station_load() > 1.0, "virtual station overloaded");
        let net = p.build();
        let loads = net.station_loads();
        assert!((loads[0] - rho_a).abs() < 1e-9);
        assert!((loads[1] - rho_b).abs() < 1e-9);
    }

    #[test]
    fn bad_priority_diverges_good_priority_does_not() {
        // E14: under the bad priority rule the total queue grows roughly
        // linearly; under the good rule it stays bounded.
        let p = LuKumarParams::default();
        let horizon = 8_000.0;
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let bad = run_lu_kumar(&p, &p.bad_priority(), "bad priority", horizon, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let good = run_lu_kumar(&p, &p.good_priority(), "good priority", horizon, &mut rng);
        assert!(
            bad.growth_rate > 10.0 * good.growth_rate.max(1e-6),
            "bad {} vs good {}",
            bad.growth_rate,
            good.growth_rate
        );
        assert!(
            bad.result.final_total > 20 * good.result.final_total.max(1),
            "bad final {} vs good final {}",
            bad.result.final_total,
            good.result.final_total
        );
        assert!(
            good.growth_rate.abs() < 0.05,
            "good policy should not drift: {}",
            good.growth_rate
        );
    }

    #[test]
    fn lighter_load_is_stable_even_under_bad_priority() {
        // With the virtual-station load below 1 the bad priority rule is
        // stable too.
        let p = LuKumarParams {
            arrival_rate: 1.0,
            mean_service: [0.1, 0.35, 0.1, 0.35],
        };
        assert!(p.virtual_station_load() < 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let run = run_lu_kumar(
            &p,
            &p.bad_priority(),
            "bad priority, light",
            8_000.0,
            &mut rng,
        );
        assert!(run.growth_rate.abs() < 0.05, "growth {}", run.growth_rate);
        assert!(run.result.final_total < 200);
    }
}

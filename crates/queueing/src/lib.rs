//! # ss-queueing — queueing scheduling control (§3 of the survey)
//!
//! Models where the jobs arrive over time and the scheduler controls a
//! service discipline in steady state:
//!
//! | Survey claim | Module |
//! |---|---|
//! | The cµ-rule minimises the steady-state holding-cost rate of a multiclass M/G/1 queue (Cox–Smith 1961) | [`mg1`] (simulator), [`cobham`] (exact formulas), [`cmu`] |
//! | Work conservation / the achievable-region (polymatroid) view of M/G/1 performance | [`conservation`] |
//! | The achievable-region LP, polymatroid vertices and the adaptive-greedy account of the cµ/Klimov indices (Bertsimas–Niño-Mora 1996) | [`achievable_region`] |
//! | Klimov's algorithm gives the optimal priority indices for the M/G/1 with Bernoulli feedback (Klimov 1974, Tcha–Pliska 1977) | [`klimov`], [`klimov_sim`] (oracle-grade simulator + exact workload) |
//! | The Klimov/cµ index used as a heuristic for multiclass M/M/m parallel servers: relaxation bounds and heavy-traffic optimality (Glazebrook–Niño-Mora 2001) | [`parallel_servers`] |
//! | Multi-station multiclass networks: the stability problem — work-conserving priority rules can be unstable below nominal capacity | [`network`], [`stability`] |
//! | Fluid approximations and fluid-guided scheduling (Chen–Yao 1993, Atkins–Chen 1995) | [`fluid`] |
//! | Changeover/setup times and polling disciplines (Levy–Sidi 1990, Reiman–Wein 1998) | [`polling`] |
//! | Setup thresholds from the heavy-traffic (diffusion) viewpoint (Reiman–Wein 1998) | [`setups`] |
//!
//! All simulators are event-driven on `ss-sim` primitives, use reproducible
//! RNG streams, support warm-up deletion and report time-average queue
//! lengths per class.

pub mod achievable_region;
pub mod cmu;
pub mod cobham;
pub mod conservation;
pub mod discipline;
pub mod fluid;
pub mod klimov;
pub mod klimov_sim;
pub mod mg1;
pub mod network;
pub mod parallel_servers;
pub mod polling;
pub(crate) mod sampling;
pub mod setups;
pub mod stability;

pub use achievable_region::{region_lp, vertex_performance, RegionLpResult};
pub use cmu::cmu_order;
pub use cobham::{mg1_nonpreemptive_priority, mg1_preemptive_priority, pollaczek_khinchine_wait};
pub use discipline::cmu_discipline;
pub use klimov::{klimov_indices, KlimovNetwork};
pub use klimov_sim::{exact_mean_workload, simulate_klimov_policy, KlimovPolicyResult};
pub use mg1::{Discipline, Mg1Config, Mg1Result};

//! Threshold (switching-curve) policies for queues with setup (changeover)
//! times, motivated by the heavy-traffic / diffusion analysis of Reiman and
//! Wein (1998).
//!
//! The survey lists changeover times as one of the model features that break
//! the plain cµ-rule, and diffusion approximations as one of the approaches
//! used to design good heuristics for such models.  Reiman and Wein analyse a
//! two-class M/G/1 queue with setups in the heavy-traffic limit and obtain a
//! policy of *switching-curve* type: the expensive (high-cµ) class is served
//! exhaustively, while service of the cheap class is **interrupted** — paying
//! a changeover — only once the expensive backlog has grown past a threshold
//! that balances the capacity lost to the setup against the holding cost of
//! keeping expensive work waiting.
//!
//! This module provides
//!
//! * [`simulate_setup_policy`] — an event-driven simulator of a multiclass
//!   M/G/1 queue with class switchover times under the switch-every-job rule,
//!   exhaustive polling, or an interrupt-[`SetupPolicy::Threshold`] policy;
//! * [`sqrt_rule_thresholds`] — an economic-lot-sizing (square-root)
//!   approximation to the diffusion thresholds;
//! * [`threshold_sweep`] — a utility used by experiment E20 to compare the
//!   square-root thresholds with the empirically best threshold.
//!
//! The three disciplines interpolate: a threshold of one interrupts for every
//! waiting higher-priority job (the cµ-every-job extreme), an infinite
//! threshold never interrupts (exhaustive polling), and the square-root
//! threshold sits in between, which is where the cost optimum lies once
//! holding costs are asymmetric and setups are non-negligible.
//!
//! **Substitution note (recorded in DESIGN.md):** the original paper solves a
//! Brownian control problem and obtains the exact diffusion switching curve;
//! this module replaces that step with a closed-form square-root (EOQ-style)
//! threshold that captures the same qualitative behaviour — the threshold
//! grows like the square root of the setup time, and the resulting policy
//! dominates both the switch-every-job and the never-interrupt extremes —
//! which is the shape the survey cites the work for.

use crate::cobham::total_load;
use crate::sampling::sample_exp;
use rand::RngCore;
use ss_core::job::JobClass;
use ss_distributions::DynDist;
use ss_sim::stats::TimeWeighted;
use std::collections::VecDeque;

/// The scheduling policy the setup-aware simulator runs.
#[derive(Debug, Clone, PartialEq)]
pub enum SetupPolicy {
    /// Switch to the highest-cµ nonempty class after every completion
    /// (the myopic rule; pays a setup on almost every switch).
    CmuEveryJob,
    /// Serve the configured class exhaustively, then switch to the
    /// highest-cµ nonempty class (never interrupt a nonempty queue).
    Exhaustive,
    /// Serve the configured class exhaustively **unless** a class with a
    /// strictly higher cµ index has accumulated at least its threshold of
    /// waiting jobs, in which case the server pays a changeover and moves to
    /// it.  `thresholds[j]` is the backlog of class `j` that justifies
    /// interrupting a lower-priority run (values below one behave like one;
    /// infinite values reproduce [`SetupPolicy::Exhaustive`]).  When the
    /// configured queue empties the server behaves exactly like the
    /// exhaustive rule (it never idles while work is present).
    Threshold {
        /// Per-class interruption thresholds (in number of waiting jobs).
        thresholds: Vec<f64>,
    },
}

/// Result of one setup-policy simulation run.
#[derive(Debug, Clone)]
pub struct SetupSimResult {
    /// Time-average number in system per class.
    pub mean_number: Vec<f64>,
    /// `Σ_j c_j * mean_number[j]`.
    pub holding_cost_rate: f64,
    /// Setups performed after warm-up.
    pub setups: u64,
    /// Fraction of (post warm-up) time spent performing setups.
    pub setup_time_fraction: f64,
}

/// Simulate a multiclass M/G/1 queue with switchover times under `policy`.
///
/// `setup[j]` is the distribution of the changeover time incurred when the
/// server reconfigures *to* class `j`.
pub fn simulate_setup_policy(
    classes: &[JobClass],
    setup: &[DynDist],
    policy: &SetupPolicy,
    horizon: f64,
    warmup: f64,
    rng: &mut dyn RngCore,
) -> SetupSimResult {
    let n = classes.len();
    assert_eq!(setup.len(), n);
    assert!(horizon > warmup);
    if let SetupPolicy::Threshold { thresholds } = policy {
        assert_eq!(thresholds.len(), n, "one threshold per class");
        assert!(thresholds.iter().all(|t| *t >= 0.0 && !t.is_nan()));
    }
    // cµ ranking (lower rank = higher priority) used both to pick targets
    // and to decide which classes may interrupt which.
    let order = crate::cmu::cmu_order(classes);
    let mut rank = vec![0usize; n];
    for (pos, &c) in order.iter().enumerate() {
        rank[c] = pos;
    }

    let mut queues: Vec<VecDeque<f64>> = vec![VecDeque::new(); n];
    let mut next_arrival: Vec<f64> = classes
        .iter()
        .map(|c| {
            if c.arrival_rate > 0.0 {
                sample_exp(rng, c.arrival_rate)
            } else {
                f64::INFINITY
            }
        })
        .collect();
    let mut counts = vec![0usize; n];
    let mut trackers: Vec<TimeWeighted> = (0..n).map(|_| TimeWeighted::new(0.0, 0.0)).collect();
    let mut warmup_done = false;
    let mut setups = 0u64;
    let mut setup_time = 0.0;

    let mut configured: Option<usize> = None;
    // (completion_time, class, is_setup)
    let mut busy: Option<(f64, usize, bool)> = None;
    let mut clock;

    loop {
        let (arr_class, arr_time) = next_arrival
            .iter()
            .cloned()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let busy_time = busy.map(|(t, _, _)| t).unwrap_or(f64::INFINITY);
        let t = arr_time.min(busy_time);
        if t > horizon {
            break;
        }
        clock = t;
        if !warmup_done && clock >= warmup {
            for tr in &mut trackers {
                tr.update(clock, tr.current());
                tr.reset(clock);
            }
            warmup_done = true;
        }

        if arr_time <= busy_time {
            counts[arr_class] += 1;
            trackers[arr_class].update(clock, counts[arr_class] as f64);
            queues[arr_class].push_back(clock);
            next_arrival[arr_class] = clock + sample_exp(rng, classes[arr_class].arrival_rate);
        } else {
            let (_, class, was_setup) = busy.take().unwrap();
            if was_setup {
                configured = Some(class);
            } else {
                counts[class] -= 1;
                trackers[class].update(clock, counts[class] as f64);
            }
        }

        if busy.is_none() {
            // Pick the class the server should work towards next.
            let highest_nonempty = (0..n)
                .filter(|&c| !queues[c].is_empty())
                .min_by_key(|&c| rank[c]);
            let target = match policy {
                SetupPolicy::CmuEveryJob => highest_nonempty,
                SetupPolicy::Exhaustive => match configured {
                    Some(c) if !queues[c].is_empty() => Some(c),
                    _ => highest_nonempty,
                },
                SetupPolicy::Threshold { thresholds } => match configured {
                    Some(c) if !queues[c].is_empty() => {
                        // Interrupt the current run only for a strictly
                        // higher-priority class whose backlog has reached its
                        // threshold (at least one job always required).
                        let interrupter = (0..n)
                            .filter(|&j| {
                                rank[j] < rank[c]
                                    && queues[j].len() as f64 >= thresholds[j].max(1.0)
                            })
                            .min_by_key(|&j| rank[j]);
                        Some(interrupter.unwrap_or(c))
                    }
                    _ => highest_nonempty,
                },
            };
            if let Some(target) = target {
                if configured == Some(target) {
                    queues[target].pop_front();
                    let service = classes[target].service.sample(rng);
                    busy = Some((clock + service, target, false));
                } else {
                    let s = setup[target].sample(rng);
                    if clock >= warmup {
                        setups += 1;
                        setup_time += s;
                    }
                    busy = Some((clock + s, target, true));
                }
            }
        }
    }

    let measured = horizon - warmup;
    let mean_number: Vec<f64> = trackers.iter().map(|tr| tr.time_average(horizon)).collect();
    let holding_cost_rate = classes
        .iter()
        .enumerate()
        .map(|(c, cl)| cl.holding_cost * mean_number[c])
        .sum();
    SetupSimResult {
        mean_number,
        holding_cost_rate,
        setups,
        setup_time_fraction: if measured > 0.0 {
            setup_time / measured
        } else {
            0.0
        },
    }
}

/// Square-root (economic-lot-sizing) approximation to the diffusion
/// interruption thresholds, with a stability floor.
///
/// Interrupting a lower-priority run for class `j` every time its backlog
/// reaches `q` jobs costs roughly two changeovers per `q` arrivals, so two
/// effects set the threshold:
///
/// * **capacity floor** — the changeover load `2 s_j λ_j / q` must fit in
///   the spare capacity `1 − ρ`, giving `q ≳ 2 s_j λ_j / (1 − ρ)`;
/// * **lot-sizing balance** — beyond that, the marginal holding-cost saving
///   of serving `q` expensive jobs earlier (`c_j q`) is weighed against the
///   amortised system-wide cost of an extra changeover
///   (`s_j λ_j Σ_k c_k λ_k / ((1 − ρ) q)`), whose balance point is the
///   square-root term `sqrt(s_j λ_j Σ_k c_k λ_k / (c_j (1 − ρ)))`.
///
/// The returned threshold is the sum of the two terms; it grows like the
/// setup time for the capacity part and like its square root for the balance
/// part — the scaling the heavy-traffic analysis predicts.  The threshold of
/// the class with the highest cµ index governs when lower-priority runs are
/// interrupted; thresholds of the lowest-priority class are never consulted
/// by the policy but are reported for completeness.
pub fn sqrt_rule_thresholds(classes: &[JobClass], mean_setup: &[f64]) -> Vec<f64> {
    let n = classes.len();
    assert_eq!(mean_setup.len(), n);
    assert!(mean_setup.iter().all(|s| s.is_finite() && *s >= 0.0));
    let rho = total_load(classes);
    assert!(rho < 1.0, "unstable even without setups (rho = {rho})");
    let slack = 1.0 - rho;
    let cost_rate: f64 = classes
        .iter()
        .map(|c| c.holding_cost * c.arrival_rate)
        .sum();
    classes
        .iter()
        .zip(mean_setup)
        .map(|(c, &s)| {
            if s == 0.0 || c.holding_cost == 0.0 || c.arrival_rate == 0.0 {
                0.0
            } else {
                let capacity_floor = 2.0 * s * c.arrival_rate / slack;
                let balance = (s * c.arrival_rate * cost_rate / (c.holding_cost * slack)).sqrt();
                capacity_floor + balance
            }
        })
        .collect()
}

/// One point of a threshold sweep.
#[derive(Debug, Clone)]
pub struct ThresholdSweepPoint {
    /// Scaling factor applied to the base thresholds.
    pub scale: f64,
    /// The thresholds actually simulated.
    pub thresholds: Vec<f64>,
    /// Simulated holding-cost rate.
    pub holding_cost_rate: f64,
    /// Simulated setups per unit time.
    pub setups_per_time: f64,
}

/// Simulate the threshold policy with the base thresholds scaled by each of
/// `scales`, returning one point per scale (experiment E20 sweeps the scale
/// to locate the empirically best threshold and compare it with the
/// square-root rule at scale 1).
///
/// The scales are simulated in parallel on the workspace thread pool; each
/// scale re-seeds its own RNG from `seed` (common random numbers across
/// scales), so the points are identical to a serial sweep for any thread
/// count.
pub fn threshold_sweep(
    classes: &[JobClass],
    setup: &[DynDist],
    base_thresholds: &[f64],
    scales: &[f64],
    horizon: f64,
    warmup: f64,
    seed: u64,
) -> Vec<ThresholdSweepPoint> {
    use rand::SeedableRng;
    use rayon::prelude::*;
    scales
        .par_iter()
        .map(|&scale| {
            let thresholds: Vec<f64> = base_thresholds.iter().map(|t| t * scale).collect();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let res = simulate_setup_policy(
                classes,
                setup,
                &SetupPolicy::Threshold {
                    thresholds: thresholds.clone(),
                },
                horizon,
                warmup,
                &mut rng,
            );
            ThresholdSweepPoint {
                scale,
                thresholds,
                holding_cost_rate: res.holding_cost_rate,
                setups_per_time: res.setups as f64 / (horizon - warmup),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polling::{simulate_polling, PollingDiscipline};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ss_distributions::{dyn_dist, Deterministic, Exponential};

    /// A cheap high-volume class 0 and an expensive class 1 (cµ order: 1, 0).
    fn classes_2() -> Vec<JobClass> {
        vec![
            JobClass::new(0, 0.40, dyn_dist(Exponential::with_mean(1.0)), 1.0),
            JobClass::new(1, 0.25, dyn_dist(Exponential::with_mean(0.8)), 8.0),
        ]
    }

    fn setups(v: f64) -> Vec<DynDist> {
        vec![
            dyn_dist(Deterministic::new(v)),
            dyn_dist(Deterministic::new(v)),
        ]
    }

    #[test]
    fn infinite_threshold_matches_exhaustive_polling() {
        let classes = classes_2();
        let setup = setups(0.25);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let threshold = simulate_setup_policy(
            &classes,
            &setup,
            &SetupPolicy::Threshold {
                thresholds: vec![f64::INFINITY, f64::INFINITY],
            },
            60_000.0,
            2_000.0,
            &mut rng,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let exhaustive = simulate_polling(
            &classes,
            &setup,
            PollingDiscipline::Exhaustive,
            60_000.0,
            2_000.0,
            &mut rng,
        );
        let rel = (threshold.holding_cost_rate - exhaustive.holding_cost_rate).abs()
            / exhaustive.holding_cost_rate;
        assert!(
            rel < 1e-9,
            "never-interrupt policy {} should equal exhaustive polling {}",
            threshold.holding_cost_rate,
            exhaustive.holding_cost_rate
        );
    }

    #[test]
    fn exhaustive_variant_matches_polling_module() {
        let classes = classes_2();
        let setup = setups(0.4);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let here = simulate_setup_policy(
            &classes,
            &setup,
            &SetupPolicy::Exhaustive,
            50_000.0,
            2_000.0,
            &mut rng,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let polling = simulate_polling(
            &classes,
            &setup,
            PollingDiscipline::Exhaustive,
            50_000.0,
            2_000.0,
            &mut rng,
        );
        let rel =
            (here.holding_cost_rate - polling.holding_cost_rate).abs() / polling.holding_cost_rate;
        assert!(
            rel < 1e-9,
            "{} vs {}",
            here.holding_cost_rate,
            polling.holding_cost_rate
        );
    }

    #[test]
    fn smaller_thresholds_interrupt_more_often() {
        let classes = classes_2();
        let setup = setups(0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let eager = simulate_setup_policy(
            &classes,
            &setup,
            &SetupPolicy::Threshold {
                thresholds: vec![1.0, 1.0],
            },
            40_000.0,
            1_000.0,
            &mut rng,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let patient = simulate_setup_policy(
            &classes,
            &setup,
            &SetupPolicy::Threshold {
                thresholds: vec![8.0, 8.0],
            },
            40_000.0,
            1_000.0,
            &mut rng,
        );
        assert!(
            eager.setups > patient.setups,
            "{} !> {}",
            eager.setups,
            patient.setups
        );
        assert!(eager.setup_time_fraction > patient.setup_time_fraction);
    }

    #[test]
    fn sqrt_rule_scales_between_sqrt_and_linear_in_the_setup() {
        let classes = classes_2();
        let small = sqrt_rule_thresholds(&classes, &[0.04, 0.04]);
        let large = sqrt_rule_thresholds(&classes, &[1.0, 1.0]);
        // A 25x larger setup raises the threshold by more than sqrt(25) = 5
        // (because of the linear capacity floor) but less than 25x.
        for j in 0..2 {
            let ratio = large[j] / small[j];
            assert!(
                ratio > 5.0 && ratio < 25.0,
                "class {j}: threshold ratio {ratio} outside the (sqrt, linear) range"
            );
        }
    }

    #[test]
    fn zero_setup_gives_zero_thresholds() {
        let classes = classes_2();
        let thresholds = sqrt_rule_thresholds(&classes, &[0.0, 0.0]);
        assert!(thresholds.iter().all(|&t| t == 0.0));
    }

    #[test]
    fn sqrt_rule_beats_both_extremes_with_asymmetric_costs() {
        // E20 shape: with an expensive class and a non-negligible setup, the
        // interrupt-threshold policy beats never interrupting (exhaustive
        // lets expensive work pile up) and switching on every job (which
        // wastes capacity on changeovers).
        let classes = vec![
            JobClass::new(0, 0.50, dyn_dist(Exponential::with_mean(1.0)), 1.0),
            JobClass::new(1, 0.15, dyn_dist(Exponential::with_mean(0.8)), 6.0),
        ];
        let setup_time = 1.0;
        let setup = setups(setup_time);
        let thresholds = sqrt_rule_thresholds(&classes, &[setup_time, setup_time]);
        let run = |policy: &SetupPolicy, seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            simulate_setup_policy(&classes, &setup, policy, 120_000.0, 4_000.0, &mut rng)
        };
        let threshold = run(&SetupPolicy::Threshold { thresholds }, 21);
        let exhaustive = run(&SetupPolicy::Exhaustive, 21);
        let myopic = run(&SetupPolicy::CmuEveryJob, 21);
        assert!(
            threshold.holding_cost_rate < exhaustive.holding_cost_rate,
            "threshold {} should beat exhaustive {}",
            threshold.holding_cost_rate,
            exhaustive.holding_cost_rate
        );
        assert!(
            threshold.holding_cost_rate < myopic.holding_cost_rate,
            "threshold {} should beat cmu-every-job {}",
            threshold.holding_cost_rate,
            myopic.holding_cost_rate
        );
    }

    #[test]
    fn threshold_sweep_is_thread_count_invariant() {
        let classes = classes_2();
        let setup = setups(0.25);
        let base = sqrt_rule_thresholds(&classes, &[0.25, 0.25]);
        let run = |threads: usize| {
            ss_sim::pool::with_threads(threads, || {
                threshold_sweep(
                    &classes,
                    &setup,
                    &base,
                    &[0.5, 1.0, 2.0],
                    20_000.0,
                    1_000.0,
                    42,
                )
            })
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.holding_cost_rate.to_bits(), b.holding_cost_rate.to_bits());
            assert_eq!(a.setups_per_time.to_bits(), b.setups_per_time.to_bits());
        }
    }

    #[test]
    fn threshold_sweep_returns_one_point_per_scale() {
        let classes = classes_2();
        let setup = setups(0.3);
        let base = sqrt_rule_thresholds(&classes, &[0.3, 0.3]);
        let points = threshold_sweep(
            &classes,
            &setup,
            &base,
            &[0.5, 1.0, 4.0],
            20_000.0,
            1_000.0,
            42,
        );
        assert_eq!(points.len(), 3);
        assert!(points
            .iter()
            .all(|p| p.holding_cost_rate.is_finite() && p.holding_cost_rate > 0.0));
        assert!(points[0].setups_per_time >= points[2].setups_per_time);
    }

    #[test]
    #[should_panic]
    fn threshold_length_mismatch_is_rejected() {
        let classes = classes_2();
        let setup = setups(0.1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = simulate_setup_policy(
            &classes,
            &setup,
            &SetupPolicy::Threshold {
                thresholds: vec![1.0],
            },
            1_000.0,
            10.0,
            &mut rng,
        );
    }
}

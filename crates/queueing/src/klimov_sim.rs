//! Klimov-network policy simulator with exact workload accounting.
//!
//! [`crate::klimov`] carries the index algorithm and a queue-length
//! simulator; this module is the *oracle-grade* simulation path used by
//! `ss-verify`'s `klimov-vs-exact` pair.  The key difference from
//! [`crate::klimov::simulate_klimov`] is that every external arrival
//! pre-samples its whole **itinerary** — the sequence of (class, service
//! time) visits its Bernoulli feedback chain will traverse — which makes
//! the *full-chain workload* process exactly observable:
//!
//! * with full-chain accounting, the workload `V(t)` (total remaining
//!   service of everything in system, all future feedback visits included)
//!   is precisely the virtual workload of an M/G/1 queue whose arrivals
//!   are the pooled external Poisson streams and whose service times are
//!   the per-arrival chain totals `B_i`;
//! * `V(t)` is invariant to the (non-idling, nonpreemptive) priority order,
//!   and its stationary mean has the closed form
//!   `E[V] = Σ_i α_i E[B_i²] / (2 (1 − ρ))`, with the chain moments
//!   `E[B_i]`, `E[B_i²]` solvable from the routing matrix
//!   ([`exact_mean_workload`]) — an exact two-sided oracle that exercises
//!   arrival generation, service sampling, feedback routing and the event
//!   loop all at once;
//! * per-class queue lengths and the weighted holding-cost rate are tracked
//!   exactly as in the classic simulator, so feedback-free networks can
//!   additionally be checked against Cobham's formulas under the Klimov
//!   (= cµ) priority order.
//!
//! Pre-sampling the itinerary does not change the law of anything observed:
//! services are i.i.d. given the class and routing draws are independent,
//! so resolving them at arrival time instead of at completion time is a
//! coupling, not a model change.

use crate::klimov::KlimovNetwork;
use crate::sampling::sample_exp;
use rand::{Rng, RngCore};
use ss_core::linalg::solve_dense;
use ss_sim::rng::RngStreams;
use ss_sim::stats::TimeWeighted;
use std::collections::VecDeque;

/// Stream id of the substream family [`klimov_policy_replications`] draws
/// from (disjoint from every other family in the workspace — see DESIGN.md's
/// stream-id table).
pub const KLIMOV_SIM_STREAM: u64 = 0x4B4C_494D; // "KLIM"

/// Result of one itinerary-presampling simulation run.
#[derive(Debug, Clone)]
pub struct KlimovPolicyResult {
    /// Time-average number in system per (current-visit) class.
    pub mean_number: Vec<f64>,
    /// `Σ_j c_j * mean_number[j]`.
    pub holding_cost_rate: f64,
    /// Time-average full-chain workload `E[V]` (see the module docs).
    pub mean_workload: f64,
    /// Completed visits per class (after warm-up).
    pub visits_completed: Vec<u64>,
}

/// One job in flight: the remaining visits of its pre-sampled itinerary
/// (front = the visit currently queued or in service).
type Itinerary = VecDeque<(usize, f64)>;

fn sample_route(row: &[f64], rng: &mut dyn RngCore) -> Option<usize> {
    let u: f64 = rng.gen::<f64>();
    let mut acc = 0.0;
    for (j, &p) in row.iter().enumerate() {
        acc += p;
        if p > 0.0 && u <= acc {
            return Some(j);
        }
    }
    None // remainder: the customer leaves the system
}

/// Pre-sample the full visit chain of an external class-`entry` arrival.
fn sample_itinerary(
    network: &KlimovNetwork,
    entry: usize,
    rng: &mut dyn RngCore,
) -> (Itinerary, f64) {
    let mut visits = Itinerary::new();
    let mut total = 0.0;
    let mut class = entry;
    loop {
        assert!(
            visits.len() < 1_000_000,
            "feedback chain failed to terminate (spectral radius >= 1?)"
        );
        let service = network.services[class].sample(rng);
        visits.push_back((class, service));
        total += service;
        match sample_route(&network.routing[class], rng) {
            Some(next) => class = next,
            None => break,
        }
    }
    (visits, total)
}

/// Simulate the network under a static nonpreemptive priority order
/// (`priority_order[0]` served first), with itinerary pre-sampling and
/// full-chain workload tracking.
pub fn simulate_klimov_policy(
    network: &KlimovNetwork,
    priority_order: &[usize],
    horizon: f64,
    warmup: f64,
    rng: &mut dyn RngCore,
) -> KlimovPolicyResult {
    let n = network.num_classes();
    assert_eq!(priority_order.len(), n);
    assert!(horizon > warmup && warmup >= 0.0);
    let mut rank = vec![0usize; n];
    for (pos, &c) in priority_order.iter().enumerate() {
        rank[c] = pos;
    }

    let mut queues: Vec<VecDeque<Itinerary>> = vec![VecDeque::new(); n];
    let mut next_arrival: Vec<f64> = network
        .arrival_rates
        .iter()
        .map(|&a| {
            if a > 0.0 {
                sample_exp(rng, a)
            } else {
                f64::INFINITY
            }
        })
        .collect();
    let mut counts = vec![0usize; n];
    let mut trackers: Vec<TimeWeighted> = (0..n).map(|_| TimeWeighted::new(0.0, 0.0)).collect();
    // The job in service: its class and the visits left after this one.
    let mut in_service: Option<(usize, Itinerary)> = None;
    let mut completion = f64::INFINITY;
    // Work not currently draining: remaining itinerary services of every
    // job that is not the in-service visit.  The in-service visit's
    // remaining work is always exactly `completion - t`, so the workload
    // V(t) = work_pending + (completion - t) carries no float drift.
    let mut work_pending = 0.0f64;
    let mut work_area = 0.0f64; // integral of V over [warmup, horizon]
    let mut prev_t = 0.0f64;
    let mut warmup_done = false;
    let mut visits_completed = vec![0u64; n];

    let workload_at = |t: f64, pending: f64, serving: bool, completion: f64| -> f64 {
        pending + if serving { completion - t } else { 0.0 }
    };

    loop {
        let (arr_class, arr_time) = next_arrival
            .iter()
            .cloned()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let t = arr_time.min(completion);
        let clock = t.min(horizon);
        // Integrate the (piecewise-linear) workload over [prev_t, clock],
        // clipped to start at the warm-up boundary.
        let serving = in_service.is_some();
        let a = prev_t.max(warmup);
        if clock > a {
            let w_start = workload_at(a, work_pending, serving, completion);
            let w_end = workload_at(clock, work_pending, serving, completion);
            work_area += 0.5 * (w_start + w_end) * (clock - a);
        }
        if t > horizon {
            break;
        }
        prev_t = t;
        if !warmup_done && t >= warmup {
            for tr in &mut trackers {
                tr.update(t, tr.current());
                tr.reset(t);
            }
            warmup_done = true;
        }

        if arr_time <= completion {
            // External arrival: pre-sample the full itinerary.
            let (itinerary, chain_work) = sample_itinerary(network, arr_class, rng);
            work_pending += chain_work;
            counts[arr_class] += 1;
            trackers[arr_class].update(t, counts[arr_class] as f64);
            queues[arr_class].push_back(itinerary);
            next_arrival[arr_class] = t + sample_exp(rng, network.arrival_rates[arr_class]);
        } else {
            // Service completion; the itinerary dictates the routing.
            let (class, mut rest) = in_service.take().expect("completion without service");
            counts[class] -= 1;
            trackers[class].update(t, counts[class] as f64);
            if t >= warmup {
                visits_completed[class] += 1;
            }
            if let Some(&(next_class, _)) = rest.front() {
                counts[next_class] += 1;
                trackers[next_class].update(t, counts[next_class] as f64);
                queues[next_class].push_back(std::mem::take(&mut rest));
            }
            completion = f64::INFINITY;
        }

        // Start a new service if the server is idle.
        if in_service.is_none() {
            let next_class = (0..n)
                .filter(|&c| !queues[c].is_empty())
                .min_by_key(|&c| rank[c]);
            if let Some(c) = next_class {
                let mut itinerary = queues[c].pop_front().unwrap();
                let (class, service) = itinerary.pop_front().expect("queued job without visits");
                // Release-mode check: a queue/itinerary mismatch would
                // serve the wrong class and silently skew every statistic.
                assert_eq!(class, c, "queued visit class must match its queue");
                work_pending -= service;
                completion = t + service;
                in_service = Some((c, itinerary));
            }
        }
    }

    let mean_number: Vec<f64> = trackers.iter().map(|tr| tr.time_average(horizon)).collect();
    let holding_cost_rate = mean_number
        .iter()
        .zip(&network.holding_costs)
        .map(|(l, c)| l * c)
        .sum();
    KlimovPolicyResult {
        mean_number,
        holding_cost_rate,
        mean_workload: work_area / (horizon - warmup),
        visits_completed,
    }
}

/// Independent seeded replications of [`simulate_klimov_policy`], fanned
/// out over the workspace pool: replication `rep` draws from
/// `RngStreams::substream(KLIMOV_SIM_STREAM, rep)`, so the results are a
/// pure function of the seed and bit-for-bit identical for any
/// `SS_THREADS`.
pub fn klimov_policy_replications(
    network: &KlimovNetwork,
    priority_order: &[usize],
    horizon: f64,
    warmup: f64,
    replications: usize,
    seed: u64,
) -> Vec<KlimovPolicyResult> {
    let streams = RngStreams::new(seed);
    ss_sim::pool::parallel_indexed(replications, |rep| {
        let mut rng = streams.substream(KLIMOV_SIM_STREAM, rep as u64);
        simulate_klimov_policy(network, priority_order, horizon, warmup, &mut rng)
    })
}

/// First and second moments of the per-arrival chain totals `B_i` (total
/// service a class-`i` external arrival accumulates over its whole feedback
/// chain): `(E[B], E[B²])` per entry class, from
/// `(I - P) m1 = β` and `(I - P) m2 = E[S²] + 2 β ∘ (P m1)`.
pub fn chain_work_moments(network: &KlimovNetwork) -> (Vec<f64>, Vec<f64>) {
    let n = network.num_classes();
    let beta: Vec<f64> = network.services.iter().map(|s| s.mean()).collect();
    let s2: Vec<f64> = network.services.iter().map(|s| s.second_moment()).collect();
    let i_minus_p: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| (if i == j { 1.0 } else { 0.0 }) - network.routing[i][j])
                .collect()
        })
        .collect();
    let m1 = solve_dense(i_minus_p.clone(), beta.clone());
    let p_m1: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| network.routing[i][j] * m1[j]).sum())
        .collect();
    let rhs2: Vec<f64> = (0..n).map(|i| s2[i] + 2.0 * beta[i] * p_m1[i]).collect();
    let m2 = solve_dense(i_minus_p, rhs2);
    (m1, m2)
}

/// Exact stationary mean of the full-chain workload
/// `E[V] = Σ_i α_i E[B_i²] / (2 (1 − ρ))` — the Pollaczek–Khinchine
/// workload of the chain-aggregated M/G/1 queue, invariant to the
/// (non-idling) priority order.  Requires `ρ < 1`.
pub fn exact_mean_workload(network: &KlimovNetwork) -> f64 {
    let rho = network.total_load();
    assert!(rho < 1.0, "unstable network: rho = {rho}");
    let (_, m2) = chain_work_moments(network);
    let numerator: f64 = network
        .arrival_rates
        .iter()
        .zip(&m2)
        .map(|(a, b2)| a * b2)
        .sum();
    numerator / (2.0 * (1.0 - rho))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::klimov::{klimov_order, KlimovNetwork};
    use ss_distributions::{dyn_dist, Erlang, Exponential};

    fn no_feedback_network() -> KlimovNetwork {
        KlimovNetwork::new(
            vec![0.2, 0.3, 0.1],
            vec![
                dyn_dist(Exponential::with_mean(1.0)),
                dyn_dist(Exponential::with_mean(0.5)),
                dyn_dist(Erlang::with_mean(2, 0.5)),
            ],
            vec![1.0, 3.0, 2.0],
            vec![vec![0.0; 3]; 3],
        )
    }

    fn feedback_network() -> KlimovNetwork {
        KlimovNetwork::new(
            vec![0.25, 0.1, 0.05],
            vec![
                dyn_dist(Exponential::with_mean(0.8)),
                dyn_dist(Exponential::with_mean(0.6)),
                dyn_dist(Erlang::with_mean(2, 1.2)),
            ],
            vec![1.0, 2.0, 4.0],
            vec![
                vec![0.1, 0.5, 0.0],
                vec![0.0, 0.0, 0.3],
                vec![0.2, 0.0, 0.0],
            ],
        )
    }

    #[test]
    fn chain_moments_reduce_to_service_moments_without_feedback() {
        let net = no_feedback_network();
        let (m1, m2) = chain_work_moments(&net);
        for (i, s) in net.services.iter().enumerate() {
            assert!((m1[i] - s.mean()).abs() < 1e-12);
            assert!((m2[i] - s.second_moment()).abs() < 1e-12);
        }
        // And the workload formula collapses to multiclass M/G/1 P-K.
        let by_hand: f64 = net
            .arrival_rates
            .iter()
            .zip(&net.services)
            .map(|(a, s)| a * s.second_moment())
            .sum::<f64>()
            / (2.0 * (1.0 - net.total_load()));
        assert!((exact_mean_workload(&net) - by_hand).abs() < 1e-12);
    }

    #[test]
    fn chain_moments_match_hand_computation_with_feedback() {
        // Single class, geometric feedback p: B = sum of G ~ Geom visits.
        // E[B] = beta / (1 - p); E[B^2] = (E[S^2] + 2 p E[S] E[B]) / (1 - p).
        let p = 0.4;
        let net = KlimovNetwork::new(
            vec![0.2],
            vec![dyn_dist(Exponential::with_mean(1.0))],
            vec![1.0],
            vec![vec![p]],
        );
        let (m1, m2) = chain_work_moments(&net);
        let b1 = 1.0 / (1.0 - p);
        let b2 = (2.0 + 2.0 * p * b1) / (1.0 - p);
        assert!((m1[0] - b1).abs() < 1e-12, "{} vs {b1}", m1[0]);
        assert!((m2[0] - b2).abs() < 1e-12, "{} vs {b2}", m2[0]);
    }

    #[test]
    fn simulated_workload_matches_the_exact_formula_with_feedback() {
        let net = feedback_network();
        let order = klimov_order(&net);
        let exact = exact_mean_workload(&net);
        let results = klimov_policy_replications(&net, &order, 60_000.0, 2_000.0, 4, 11);
        let sim: f64 = results.iter().map(|r| r.mean_workload).sum::<f64>() / results.len() as f64;
        assert!(
            (sim - exact).abs() / exact < 0.08,
            "simulated workload {sim} vs exact {exact}"
        );
    }

    #[test]
    fn workload_is_priority_order_invariant_in_expectation() {
        let net = feedback_network();
        let a = klimov_policy_replications(&net, &[0, 1, 2], 40_000.0, 1_000.0, 3, 5);
        let b = klimov_policy_replications(&net, &[2, 1, 0], 40_000.0, 1_000.0, 3, 5);
        let mean = |rs: &[KlimovPolicyResult]| {
            rs.iter().map(|r| r.mean_workload).sum::<f64>() / rs.len() as f64
        };
        let (wa, wb) = (mean(&a), mean(&b));
        assert!(
            (wa - wb).abs() / wa < 0.1,
            "workload should not depend on the order: {wa} vs {wb}"
        );
    }

    #[test]
    fn no_feedback_holding_cost_matches_cobham() {
        let net = no_feedback_network();
        let order = vec![1usize, 2, 0];
        let classes: Vec<ss_core::job::JobClass> = (0..3)
            .map(|i| {
                ss_core::job::JobClass::new(
                    i,
                    net.arrival_rates[i],
                    net.services[i].clone(),
                    net.holding_costs[i],
                )
            })
            .collect();
        let exact = crate::cobham::mg1_nonpreemptive_priority(&classes, &order);
        let results = klimov_policy_replications(&net, &order, 80_000.0, 2_000.0, 4, 7);
        for i in 0..3 {
            let sim: f64 =
                results.iter().map(|r| r.mean_number[i]).sum::<f64>() / results.len() as f64;
            assert!(
                (sim - exact.number_in_system[i]).abs() / exact.number_in_system[i] < 0.1,
                "class {i}: sim {sim} vs exact {}",
                exact.number_in_system[i]
            );
        }
    }

    #[test]
    fn replications_are_thread_count_invariant_and_seed_pure() {
        let net = feedback_network();
        let order = klimov_order(&net);
        let run = |threads: usize, seed: u64| {
            ss_sim::pool::with_threads(threads, || {
                klimov_policy_replications(&net, &order, 5_000.0, 500.0, 6, seed)
            })
        };
        let serial = run(1, 42);
        let parallel = run(4, 42);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.mean_workload.to_bits(), b.mean_workload.to_bits());
            assert_eq!(a.holding_cost_rate.to_bits(), b.holding_cost_rate.to_bits());
            assert_eq!(a.visits_completed, b.visits_completed);
        }
        // Seed purity: reproducible for equal seeds, different otherwise.
        let again = run(2, 42);
        assert!(serial
            .iter()
            .zip(&again)
            .all(|(a, b)| a.mean_workload.to_bits() == b.mean_workload.to_bits()));
        let other = run(1, 43);
        assert!(serial
            .iter()
            .zip(&other)
            .any(|(a, b)| a.mean_workload.to_bits() != b.mean_workload.to_bits()));
    }

    #[test]
    fn completed_visit_rates_track_effective_arrival_rates() {
        // The per-class completed-visit rate must converge to the effective
        // arrival rate gamma (external + feedback) — an exact identity that
        // exercises the routing chain end to end.
        let net = feedback_network();
        let order = klimov_order(&net);
        let gamma = net.effective_arrival_rates();
        let horizon = 120_000.0;
        let warmup = 2_000.0;
        let results = klimov_policy_replications(&net, &order, horizon, warmup, 2, 3);
        for i in 0..net.num_classes() {
            let rate: f64 = results
                .iter()
                .map(|r| r.visits_completed[i] as f64 / (horizon - warmup))
                .sum::<f64>()
                / results.len() as f64;
            assert!(
                (rate - gamma[i]).abs() / gamma[i] < 0.05,
                "class {i}: visit rate {rate} vs gamma {}",
                gamma[i]
            );
        }
    }
}

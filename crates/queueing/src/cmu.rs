//! The cµ-rule (Cox–Smith 1961).

use ss_core::index::argsort_decreasing;
use ss_core::job::JobClass;

/// The cµ priority order: classes sorted by nonincreasing `c_j µ_j`
/// (highest priority first).  Optimal for the nonpreemptive multiclass
/// M/G/1 queue with linear holding costs, and among preemptive policies
/// when service times are exponential.
pub fn cmu_order(classes: &[JobClass]) -> Vec<usize> {
    let indices: Vec<f64> = classes.iter().map(|c| c.cmu_index()).collect();
    argsort_decreasing(&indices)
}

/// The cµ indices themselves, in class order.
pub fn cmu_indices(classes: &[JobClass]) -> Vec<f64> {
    classes.iter().map(|c| c.cmu_index()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_distributions::{dyn_dist, Exponential};

    #[test]
    fn order_follows_c_times_mu() {
        let classes = vec![
            JobClass::new(0, 0.1, dyn_dist(Exponential::with_mean(1.0)), 1.0), // index 1
            JobClass::new(1, 0.1, dyn_dist(Exponential::with_mean(0.25)), 1.0), // index 4
            JobClass::new(2, 0.1, dyn_dist(Exponential::with_mean(1.0)), 2.5), // index 2.5
        ];
        assert_eq!(cmu_order(&classes), vec![1, 2, 0]);
        let idx = cmu_indices(&classes);
        assert!((idx[1] - 4.0).abs() < 1e-12);
    }
}

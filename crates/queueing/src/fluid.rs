//! Fluid approximations of multiclass queueing networks
//! (Chen–Yao 1993, Atkins–Chen 1995).
//!
//! The fluid model replaces the stochastic queue-length process by its
//! deterministic, law-of-large-numbers limit: buffer contents `x_k(t)`
//! drain at rate `µ_k u_k(t)` where the allocations `u` of each station sum
//! to at most one, and fill at the external arrival rates plus the routed
//! outflow of upstream buffers.  The survey lists fluid models as one of
//! the main tools for constructing good policies for otherwise intractable
//! networks; experiment E15 uses this module to
//!
//! * verify the law-of-large-numbers connection (a scaled stochastic
//!   simulation tracks the fluid trajectory),
//! * compare holding costs of priority policies in the fluid model (the
//!   cµ priority drains cost fastest for a single station), and
//! * exhibit the fluid counterpart of the Lu–Kumar instability.

use crate::network::MultiClassNetwork;

/// A fluid network: arrival rates, service rates, routing and station map
/// per buffer (class).
#[derive(Debug, Clone)]
pub struct FluidNetwork {
    /// External (deterministic) inflow rate per buffer.
    pub arrival_rates: Vec<f64>,
    /// Service (drain) rate per buffer when fully allocated.
    pub service_rates: Vec<f64>,
    /// Station of each buffer.
    pub stations: Vec<usize>,
    /// Routing: fraction of buffer `k`'s outflow that enters buffer `j`.
    pub routing: Vec<Vec<f64>>,
    /// Holding cost per unit of fluid per unit time.
    pub holding_costs: Vec<f64>,
}

impl FluidNetwork {
    /// Create a fluid network.
    pub fn new(
        arrival_rates: Vec<f64>,
        service_rates: Vec<f64>,
        stations: Vec<usize>,
        routing: Vec<Vec<f64>>,
        holding_costs: Vec<f64>,
    ) -> Self {
        let n = arrival_rates.len();
        assert!(n > 0);
        assert_eq!(service_rates.len(), n);
        assert_eq!(stations.len(), n);
        assert_eq!(routing.len(), n);
        assert_eq!(holding_costs.len(), n);
        for row in &routing {
            assert_eq!(row.len(), n);
            let total: f64 = row.iter().sum();
            assert!(total <= 1.0 + 1e-9);
        }
        assert!(service_rates.iter().all(|&m| m > 0.0));
        Self {
            arrival_rates,
            service_rates,
            stations,
            routing,
            holding_costs,
        }
    }

    /// Derive the fluid network from a stochastic [`MultiClassNetwork`]
    /// (rates = 1 / mean service time).
    pub fn from_network(network: &MultiClassNetwork) -> Self {
        let n = network.classes.len();
        let mut routing = vec![vec![0.0; n]; n];
        for (k, c) in network.classes.iter().enumerate() {
            for &(j, p) in &c.routing {
                routing[k][j] += p;
            }
        }
        Self::new(
            network.classes.iter().map(|c| c.arrival_rate).collect(),
            network
                .classes
                .iter()
                .map(|c| 1.0 / c.service.mean())
                .collect(),
            network.classes.iter().map(|c| c.station).collect(),
            routing,
            network.classes.iter().map(|c| c.holding_cost).collect(),
        )
    }

    /// Number of buffers.
    pub fn num_buffers(&self) -> usize {
        self.arrival_rates.len()
    }

    /// Number of stations.
    pub fn num_stations(&self) -> usize {
        self.stations.iter().max().unwrap() + 1
    }
}

/// A fluid trajectory: buffer levels sampled on a uniform time grid.
#[derive(Debug, Clone)]
pub struct FluidTrajectory {
    /// Sampling instants.
    pub times: Vec<f64>,
    /// `levels[i][k]` = level of buffer `k` at `times[i]`.
    pub levels: Vec<Vec<f64>>,
    /// Integral of the holding cost `∫ Σ_k c_k x_k(t) dt` over the horizon.
    pub total_cost: f64,
    /// First time at which every buffer is (numerically) empty, if any.
    pub drain_time: Option<f64>,
}

/// Integrate the fluid dynamics under a static per-station priority policy
/// (highest priority first in `station_priority[s]`), starting from
/// `initial`, over `[0, horizon]` with an Euler step `dt`.
///
/// At each station, capacity is allocated down the priority list: a
/// positive buffer takes all remaining capacity; an empty buffer takes just
/// enough to offset its instantaneous inflow (so it stays empty), which is
/// the standard fluid dynamics of a priority discipline.
pub fn integrate_priority_fluid(
    network: &FluidNetwork,
    station_priority: &[Vec<usize>],
    initial: &[f64],
    horizon: f64,
    dt: f64,
    samples: usize,
) -> FluidTrajectory {
    let n = network.num_buffers();
    let s_count = network.num_stations();
    assert_eq!(initial.len(), n);
    assert_eq!(station_priority.len(), s_count);
    assert!(dt > 0.0 && horizon > 0.0 && samples >= 2);

    let mut x: Vec<f64> = initial.to_vec();
    let mut times = Vec::with_capacity(samples);
    let mut levels = Vec::with_capacity(samples);
    let sample_dt = horizon / (samples - 1) as f64;
    let mut next_sample = 0.0;
    let mut total_cost = 0.0;
    let mut drain_time = None;

    let steps = (horizon / dt).ceil() as usize;
    for step in 0..=steps {
        let t = step as f64 * dt;
        if t >= next_sample - 1e-12 && times.len() < samples {
            times.push(t);
            levels.push(x.clone());
            next_sample += sample_dt;
        }
        // Compute inflow rates (external + routed) given current allocations.
        // Allocation is computed per station by priority, with the
        // "keep empty buffers empty" rule, iterating twice so that upstream
        // allocations influence downstream inflows within the same step.
        let mut drain = vec![0.0; n];
        for _pass in 0..2 {
            let mut inflow = network.arrival_rates.clone();
            for k in 0..n {
                let out = drain[k];
                for j in 0..n {
                    inflow[j] += network.routing[k][j] * out;
                }
            }
            for s in 0..s_count {
                let mut capacity = 1.0f64;
                for &k in &station_priority[s] {
                    debug_assert_eq!(network.stations[k], s);
                    if capacity <= 0.0 {
                        drain[k] = 0.0;
                        continue;
                    }
                    // Allocate enough to clear the current content within one
                    // Euler step *and* absorb the instantaneous inflow, capped
                    // by the remaining capacity.  For a large backlog this is
                    // the full remaining capacity (strict priority); for an
                    // empty buffer it is exactly the keep-it-empty allocation.
                    // Using the one-step clearing rate instead of a hard
                    // x > 0 test avoids discretisation chattering that would
                    // otherwise starve lower-priority buffers.
                    let needed = (x[k] / (network.service_rates[k] * dt)
                        + inflow[k] / network.service_rates[k])
                        .min(capacity);
                    drain[k] = network.service_rates[k] * needed;
                    capacity -= needed;
                }
            }
        }
        // Final inflows with the settled allocation.
        let mut inflow = network.arrival_rates.clone();
        for k in 0..n {
            for j in 0..n {
                inflow[j] += network.routing[k][j] * drain[k];
            }
        }
        // Cost accumulation and Euler update.
        let cost_rate: f64 = (0..n).map(|k| network.holding_costs[k] * x[k]).sum();
        total_cost += cost_rate * dt;
        for k in 0..n {
            x[k] = (x[k] + dt * (inflow[k] - drain[k])).max(0.0);
        }
        if drain_time.is_none() && x.iter().all(|&v| v < 1e-6) {
            drain_time = Some(t);
        }
    }
    while times.len() < samples {
        times.push(horizon);
        levels.push(x.clone());
    }
    FluidTrajectory {
        times,
        levels,
        total_cost,
        drain_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability::LuKumarParams;

    /// Single station, two buffers, no arrivals: pure draining.
    fn single_station() -> FluidNetwork {
        FluidNetwork::new(
            vec![0.0, 0.0],
            vec![2.0, 1.0],
            vec![0, 0],
            vec![vec![0.0, 0.0], vec![0.0, 0.0]],
            vec![1.0, 3.0],
        )
    }

    #[test]
    fn draining_a_single_buffer_is_linear() {
        let net = FluidNetwork::new(vec![0.0], vec![2.0], vec![0], vec![vec![0.0]], vec![1.0]);
        let traj = integrate_priority_fluid(&net, &[vec![0]], &[4.0], 5.0, 0.001, 6);
        // Drains at rate 2, so empty at t = 2; cost = integral of x = 4^2/(2*2) = 4.
        assert!(traj.drain_time.unwrap() <= 2.01);
        assert!(
            (traj.total_cost - 4.0).abs() < 0.05,
            "cost {}",
            traj.total_cost
        );
    }

    #[test]
    fn cmu_priority_drains_cost_faster() {
        // Buffer 1 has cost 3 and rate 1 (cµ = 3); buffer 0 has cost 1 and
        // rate 2 (cµ = 2).  Serving buffer 1 first minimises the integral
        // of holding cost in the fluid model.
        let net = single_station();
        let x0 = [2.0, 2.0];
        let cmu_first = integrate_priority_fluid(&net, &[vec![1, 0]], &x0, 10.0, 0.001, 5);
        let reverse = integrate_priority_fluid(&net, &[vec![0, 1]], &x0, 10.0, 0.001, 5);
        assert!(
            cmu_first.total_cost < reverse.total_cost,
            "cµ-first {} should beat reverse {}",
            cmu_first.total_cost,
            reverse.total_cost
        );
        // Total drain time is the same (work conservation).
        let d1 = cmu_first.drain_time.unwrap();
        let d2 = reverse.drain_time.unwrap();
        assert!((d1 - d2).abs() < 0.05, "drain times {d1} vs {d2}");
    }

    #[test]
    fn empty_buffers_pass_capacity_downstream() {
        // Tandem: buffer 0 (station 0) feeds buffer 1 (station 1); arrivals
        // 0.4; service rates 1.  In steady fluid state both stay empty.
        let net = FluidNetwork::new(
            vec![0.4, 0.0],
            vec![1.0, 1.0],
            vec![0, 1],
            vec![vec![0.0, 1.0], vec![0.0, 0.0]],
            vec![1.0, 1.0],
        );
        let traj = integrate_priority_fluid(&net, &[vec![0], vec![1]], &[0.0, 0.0], 10.0, 0.001, 5);
        let last = traj.levels.last().unwrap();
        assert!(
            last.iter().all(|&x| x < 1e-6),
            "buffers should stay empty: {last:?}"
        );
    }

    #[test]
    fn lu_kumar_fluid_reflects_the_instability() {
        // The fluid model of the Lu–Kumar network under the bad priority
        // rule keeps oscillating and accumulating fluid, whereas the good
        // priority rule keeps the total bounded near zero.
        let params = LuKumarParams::default();
        let net = FluidNetwork::from_network(&params.build());
        let x0 = [1.0, 0.0, 0.0, 0.0];
        let bad = integrate_priority_fluid(&net, &params.bad_priority(), &x0, 200.0, 0.002, 21);
        let good = integrate_priority_fluid(&net, &params.good_priority(), &x0, 200.0, 0.002, 21);
        let bad_final: f64 = bad.levels.last().unwrap().iter().sum();
        let good_final: f64 = good.levels.last().unwrap().iter().sum();
        assert!(
            bad_final > 5.0 * (good_final + 0.1),
            "bad fluid total {bad_final} should dwarf good {good_final}"
        );
        assert!(bad.total_cost > good.total_cost);
    }

    #[test]
    fn fluid_tracks_scaled_stochastic_simulation() {
        // Law of large numbers: an M/M/1 queue started with N jobs and
        // sped-up rates, scaled by 1/N, tracks the fluid drain line.
        use crate::network::{simulate_network, MultiClassNetwork, NetworkClass};
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng;
        use ss_distributions::{dyn_dist, Exponential};

        let big_n = 400usize;
        let net = MultiClassNetwork::new(vec![NetworkClass {
            station: 0,
            arrival_rate: 0.5,
            service: dyn_dist(Exponential::with_mean(1.0)),
            holding_cost: 1.0,
            routing: vec![],
        }]);
        // Stochastic run started empty... to emulate an initial fluid level
        // of 1 we instead push a burst through a short horizon with high
        // arrival rate; simpler: compare the *stationary* mean of the fluid
        // (0, since rho < 1 the fluid drains) with the scaled queue, which
        // stays O(1/N) after scaling.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let res = simulate_network(&net, &[vec![0]], 5_000.0, 100.0, 20, &mut rng);
        let scaled = res.mean_number[0] / big_n as f64;
        let fluid = FluidNetwork::from_network(&net);
        let traj = integrate_priority_fluid(&fluid, &[vec![0]], &[0.0], 50.0, 0.01, 5);
        let fluid_final = traj.levels.last().unwrap()[0];
        assert!(fluid_final < 1e-6);
        assert!(
            scaled < 0.05,
            "scaled stochastic queue {scaled} should be near the fluid level 0"
        );
    }
}

//! # stochastic-scheduling
//!
//! A reproduction of the survey **"Stochastic Scheduling"** (José Niño-Mora)
//! as a Rust workspace.  This facade crate re-exports every member crate so
//! downstream users (and the `examples/` binaries) can depend on a single
//! package:
//!
//! * [`distributions`] — processing-time / inter-arrival distributions,
//!   hazard-rate classification, stochastic orderings.
//! * [`sim`] — discrete-event simulation engine, statistics, replication
//!   runners, and the multi-threaded execution pool (`sim::pool`,
//!   `SS_THREADS`) with bit-for-bit serial/parallel determinism.
//! * [`lp`] — dense two-phase simplex LP solver (Whittle / achievable-region
//!   relaxations).
//! * [`mdp`] — finite Markov decision process solvers (discounted and
//!   average criteria, optimal stopping).
//! * [`core`] — shared scheduling vocabulary: jobs, objectives, index
//!   policies, comparison tables.
//! * [`batch`] — §1 of the survey: scheduling a batch of stochastic jobs
//!   (WSEPT, SEPT/LEPT, preemptive Gittins-type indices, parallel machines,
//!   flow shops, turnpike asymptotics).
//! * [`bandits`] — §2: multi-armed and restless bandits (Gittins index,
//!   Whittle index, marginal productivity indices, branching bandits,
//!   LP relaxation bounds, switching costs).
//! * [`queueing`] — §3: queueing scheduling control (multiclass M/G/1 and
//!   the cµ-rule, the achievable-region LP and adaptive-greedy indices,
//!   Klimov networks, parallel servers, multistation networks, stability,
//!   fluid models, polling and setup thresholds).
//! * [`index`] — the decision-serving layer: every discipline's priority
//!   indices tabulated into flat cache-friendly SoA tables (saturating
//!   `(class, queue_len)` lookups, zero-alloc single and batched paths)
//!   with warm-start incremental recomputation on parameter drift, all
//!   bit-identical to the per-call solvers they front.
//! * [`fabric`] — service-fabric discrete-event simulator: open arrival
//!   sources (Poisson / MMPP) feeding load-balanced multi-server tiers with
//!   pluggable index disciplines (FIFO / cµ / Gittins / Whittle), failures,
//!   bounded queues, retries, and end-to-end RTT percentiles (`fabric`
//!   binary, `--check` CI gate).
//! * [`verify`] — analytic-oracle cross-validation: the Monte-Carlo
//!   simulators checked against the exact solvers (Pollaczek–Khinchine,
//!   Cobham, conservation laws, joint-MDP value iteration, LP duality)
//!   over a generated scenario corpus (`verify` binary, `--check` CI gate).
//!
//! See `DESIGN.md` for the full system inventory (including the execution
//! pool's architecture) and `EXPERIMENTS.md` for the measured results of
//! experiments E1–E22, regenerated via
//! `cargo run --release -p ss-bench --bin experiments`.
//!
//! ## Quickstart
//!
//! ```
//! use stochastic_scheduling::batch::policies::wsept_order;
//! use stochastic_scheduling::batch::single_machine::expected_weighted_flowtime;
//! use stochastic_scheduling::core::instance::BatchInstance;
//! use stochastic_scheduling::distributions::{dyn_dist, Exponential};
//!
//! // Three stochastic jobs on one machine: WSEPT sequences them optimally.
//! let instance = BatchInstance::builder()
//!     .job(1.0, dyn_dist(Exponential::with_mean(2.0)))
//!     .job(4.0, dyn_dist(Exponential::with_mean(1.0)))
//!     .job(2.0, dyn_dist(Exponential::with_mean(3.0)))
//!     .build();
//! let order = wsept_order(&instance);
//! let cost = expected_weighted_flowtime(&instance, &order);
//! assert!(cost > 0.0);
//! ```

pub use ss_bandits as bandits;
pub use ss_batch as batch;
pub use ss_conform as conform;
pub use ss_core as core;
pub use ss_distributions as distributions;
pub use ss_fabric as fabric;
pub use ss_index as index;
pub use ss_lint as lint;
pub use ss_lp as lp;
pub use ss_mdp as mdp;
pub use ss_queueing as queueing;
pub use ss_sim as sim;
pub use ss_verify as verify;

//! A manufacturing workstation processing several part types — the
//! motivating example from the survey's introduction.
//!
//! ```text
//! cargo run --release --example manufacturing_workstation
//! ```
//!
//! Part types arrive at random (Poisson), their processing times are random
//! with different variability per type, and each waiting part ties up
//! capital at a type-specific rate.  The example compares scheduling
//! policies for the workstation in steady state:
//!
//! * FIFO (no prioritisation),
//! * the cµ-rule (optimal for linear holding costs),
//! * the reverse of the cµ-rule (a deliberately bad rule, to show the spread),
//! * and, when parts need rework (feedback), the Klimov index policy.

use rand_chacha::ChaCha8Rng;
use stochastic_scheduling::core::job::JobClass;
use stochastic_scheduling::distributions::{
    dyn_dist, Deterministic, Erlang, Exponential, HyperExponential,
};
use stochastic_scheduling::queueing::cmu::cmu_order;
use stochastic_scheduling::queueing::cobham::mg1_nonpreemptive_priority;
use stochastic_scheduling::queueing::klimov::{
    klimov_indices, klimov_order, simulate_klimov, KlimovNetwork,
};
use stochastic_scheduling::queueing::mg1::{simulate_mg1, Discipline, Mg1Config};

fn seeded(seed: u64) -> ChaCha8Rng {
    use rand::SeedableRng;
    ChaCha8Rng::seed_from_u64(seed)
}

fn main() {
    // Three part types: castings (slow, steady), brackets (fast, low value),
    // precision housings (very variable, expensive to keep waiting).
    let classes = vec![
        JobClass::new(0, 0.25, dyn_dist(Erlang::with_mean(4, 1.2)), 1.0),
        JobClass::new(1, 0.50, dyn_dist(Deterministic::new(0.4)), 0.5),
        JobClass::new(
            2,
            0.10,
            dyn_dist(HyperExponential::with_mean_scv(2.0, 6.0)),
            5.0,
        ),
    ];
    let load: f64 = classes.iter().map(|c| c.load()).sum();
    println!("workstation load rho = {load:.3}\n");

    let cmu = cmu_order(&classes);
    let mut reverse = cmu.clone();
    reverse.reverse();
    println!("cmu priority order (highest first): {cmu:?}");

    // Exact values where the formulas apply, simulation for FIFO.
    let exact_cmu = mg1_nonpreemptive_priority(&classes, &cmu);
    let exact_rev = mg1_nonpreemptive_priority(&classes, &reverse);
    let sim = |discipline: Discipline, seed: u64| {
        let config = Mg1Config {
            classes: classes.clone(),
            discipline,
            horizon: 400_000.0,
            warmup: 10_000.0,
        };
        simulate_mg1(&config, &mut seeded(seed))
    };
    let fifo = sim(Discipline::Fifo, 1);
    let sim_cmu = sim(Discipline::NonpreemptivePriority(cmu.clone()), 2);

    println!("\nsteady-state holding-cost rate (capital tied up per hour):");
    println!(
        "  cmu rule      : {:.4}  (exact Cobham)",
        exact_cmu.holding_cost_rate
    );
    println!(
        "  cmu rule      : {:.4}  (simulation)",
        sim_cmu.holding_cost_rate
    );
    println!(
        "  FIFO          : {:.4}  (simulation)",
        fifo.holding_cost_rate
    );
    println!(
        "  reverse cmu   : {:.4}  (exact Cobham)",
        exact_rev.holding_cost_rate
    );
    println!(
        "\nthe cmu rule saves {:.1}% of the FIFO holding cost\n",
        (1.0 - exact_cmu.holding_cost_rate / fifo.holding_cost_rate) * 100.0
    );

    // Rework loop: 20% of precision housings fail inspection and return as
    // rework jobs (a fourth class) — the Klimov model.
    println!("== with a rework loop (Klimov's model) ==\n");
    let network = KlimovNetwork::new(
        vec![0.25, 0.50, 0.10, 0.0],
        vec![
            dyn_dist(Erlang::with_mean(4, 1.2)),
            dyn_dist(Deterministic::new(0.4)),
            dyn_dist(HyperExponential::with_mean_scv(2.0, 6.0)),
            dyn_dist(Exponential::with_mean(1.5)),
        ],
        vec![1.0, 0.5, 5.0, 5.0],
        vec![
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.2], // housings go to rework with prob 0.2
            vec![0.0, 0.0, 0.0, 0.0],
        ],
    );
    println!("total load with rework: {:.3}", network.total_load());
    println!(
        "Klimov indices: {:?}",
        klimov_indices(&network)
            .iter()
            .map(|x| (x * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    let order = klimov_order(&network);
    println!("Klimov priority order: {order:?}");
    let res = simulate_klimov(&network, &order, 400_000.0, 10_000.0, &mut seeded(3));
    println!(
        "holding-cost rate under the Klimov policy : {:.4}",
        res.holding_cost_rate
    );
    let naive = simulate_klimov(&network, &[0, 1, 2, 3], 400_000.0, 10_000.0, &mut seeded(3));
    println!(
        "holding-cost rate under a naive order     : {:.4}",
        naive.holding_cost_rate
    );
}

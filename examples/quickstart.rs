//! Quickstart: the three classical index rules in one sitting.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. A batch of stochastic jobs on one machine — WSEPT (Smith's rule on
//!    means) is optimal and we verify it against exhaustive search.
//! 2. A two-armed bandit — the Gittins index tells you to explore the
//!    uncertain project even though its immediate reward is zero.
//! 3. A multiclass M/G/1 queue — the cµ-rule minimises the holding cost and
//!    the exact Cobham formulas agree with simulation.

use stochastic_scheduling::bandits::exact::MultiArmedBandit;
use stochastic_scheduling::bandits::gittins::gittins_indices_vwb;
use stochastic_scheduling::bandits::project::BanditProject;
use stochastic_scheduling::batch::policies::wsept_order;
use stochastic_scheduling::batch::single_machine::{
    exhaustive_optimal_order, expected_weighted_flowtime,
};
use stochastic_scheduling::core::instance::BatchInstance;
use stochastic_scheduling::core::job::JobClass;
use stochastic_scheduling::distributions::{dyn_dist, Erlang, Exponential, HyperExponential};
use stochastic_scheduling::queueing::cmu::cmu_order;
use stochastic_scheduling::queueing::cobham::mg1_nonpreemptive_priority;

fn main() {
    // --- 1. Batch scheduling: WSEPT ------------------------------------
    println!("== 1. Scheduling a batch of stochastic jobs (single machine) ==\n");
    let instance = BatchInstance::builder()
        .job(1.0, dyn_dist(Exponential::with_mean(2.0)))
        .job(4.0, dyn_dist(Erlang::with_mean(3, 1.0)))
        .job(2.0, dyn_dist(HyperExponential::with_mean_scv(3.0, 4.0)))
        .job(0.5, dyn_dist(Exponential::with_mean(0.5)))
        .build();
    let order = wsept_order(&instance);
    let wsept_value = expected_weighted_flowtime(&instance, &order);
    let (best_order, best_value) = exhaustive_optimal_order(&instance);
    println!("WSEPT order          : {order:?}  ->  E[sum w C] = {wsept_value:.4}");
    println!("exhaustive optimum   : {best_order:?}  ->  E[sum w C] = {best_value:.4}");
    println!(
        "WSEPT is optimal (Rothkopf 1966): {}\n",
        (wsept_value - best_value).abs() < 1e-9
    );

    // --- 2. Multi-armed bandit: Gittins index ---------------------------
    println!("== 2. Multi-armed bandit (discounted, beta = 0.95) ==\n");
    let safe = BanditProject::new(vec![0.4], vec![vec![(0, 1.0)]]);
    let risky = BanditProject::new(
        vec![0.0, 1.0],
        vec![vec![(1, 0.5), (0, 0.5)], vec![(1, 1.0)]],
    );
    let beta = 0.95;
    println!(
        "Gittins index of the safe project  : {:?}",
        gittins_indices_vwb(&safe, beta)
    );
    println!(
        "Gittins index of the risky project : {:?}",
        gittins_indices_vwb(&risky, beta)
    );
    let mab = MultiArmedBandit::new(vec![safe, risky], beta);
    let init = [0usize, 0];
    println!(
        "optimal value (exact DP)           : {:.4}",
        mab.optimal_value(&init)
    );
    println!(
        "Gittins policy value               : {:.4}",
        mab.gittins_policy_value(&init)
    );
    println!(
        "myopic policy value                : {:.4}\n",
        mab.myopic_policy_value(&init)
    );

    // --- 3. Queueing control: the cµ-rule -------------------------------
    println!("== 3. Multiclass M/G/1 queue (steady state) ==\n");
    let classes = vec![
        JobClass::new(0, 0.2, dyn_dist(Exponential::with_mean(1.0)), 1.0),
        JobClass::new(1, 0.3, dyn_dist(Erlang::with_mean(2, 0.5)), 3.0),
        JobClass::new(
            2,
            0.1,
            dyn_dist(HyperExponential::with_mean_scv(2.0, 5.0)),
            2.0,
        ),
    ];
    let order = cmu_order(&classes);
    println!("cmu priority order: {order:?}");
    let means = mg1_nonpreemptive_priority(&classes, &order);
    for (k, class) in classes.iter().enumerate() {
        println!(
            "  class {k}: E[wait] = {:.3}, E[number in system] = {:.3} (c = {}, mu = {:.2})",
            means.wait[k],
            means.number_in_system[k],
            class.holding_cost,
            class.service_rate()
        );
    }
    println!(
        "steady-state holding cost rate under cmu: {:.4}",
        means.holding_cost_rate
    );
}

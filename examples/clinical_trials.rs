//! Sequential design of experiments — the application that motivated the
//! Gittins index (Gittins & Jones 1974): allocating patients between
//! treatments with unknown success probabilities.
//!
//! ```text
//! cargo run --release --example clinical_trials
//! ```
//!
//! Each treatment arm carries a Beta prior over its unknown success rate;
//! its state is the posterior (successes, failures).  The Gittins index of
//! a posterior exceeds its mean — the *exploration bonus* — and the index
//! rule optimally balances learning against earning.  The example prints a
//! small Gittins index table for the uniform prior and then simulates a
//! two-treatment trial comparing the Gittins rule with the myopic
//! (play-the-best-posterior-mean) rule.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use stochastic_scheduling::bandits::gittins::gittins_indices_vwb;
use stochastic_scheduling::bandits::instances::{
    bernoulli_sampling_project, bernoulli_state_index,
};

fn main() {
    use rand::SeedableRng;
    let depth = 12; // posterior truncation: at most 12 observations per arm
    let beta = 0.95;
    let project = bernoulli_sampling_project(depth, 1.0, 1.0);
    let indices = gittins_indices_vwb(&project, beta);

    println!(
        "Gittins indices for a Beta(1,1) prior, beta = {beta} (rows: successes, cols: failures)\n"
    );
    print!("      ");
    for f in 0..6 {
        print!("  f={f}   ");
    }
    println!();
    for s in 0..6 {
        print!("s={s}   ");
        for f in 0..6 {
            if s + f < depth {
                let idx = indices[bernoulli_state_index(s, f, depth)];
                print!("{idx:7.3} ");
            }
        }
        println!();
    }
    let fresh = bernoulli_state_index(0, 0, depth);
    println!(
        "\nexploration bonus of an untried treatment: index {:.3} vs posterior mean 0.500\n",
        indices[fresh]
    );

    // Simulate a two-arm trial: true success rates 0.45 and 0.60.
    let true_rates = [0.45, 0.60];
    let horizon = 200;
    let trials = 2000;
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let run_policy = |use_gittins: bool, rng: &mut ChaCha8Rng| -> f64 {
        let mut total_successes = 0.0;
        for _ in 0..trials {
            let mut counts = [[0usize; 2]; 2]; // [arm][success, failure]
            for _ in 0..horizon {
                let score = |arm: usize| -> f64 {
                    let (s, f) = (counts[arm][0], counts[arm][1]);
                    if use_gittins && s + f < depth {
                        indices[bernoulli_state_index(s, f, depth)]
                    } else {
                        (s as f64 + 1.0) / ((s + f) as f64 + 2.0)
                    }
                };
                let arm = if score(0) >= score(1) { 0 } else { 1 };
                if rng.gen::<f64>() < true_rates[arm] {
                    counts[arm][0] += 1;
                    total_successes += 1.0;
                } else {
                    counts[arm][1] += 1;
                }
            }
        }
        total_successes / trials as f64
    };
    let gittins_successes = run_policy(true, &mut rng);
    let myopic_successes = run_policy(false, &mut rng);
    println!("two treatments with true success rates {true_rates:?}, {horizon} patients, {trials} simulated trials:");
    println!("  Gittins index rule : {gittins_successes:.1} successes per trial on average");
    println!("  myopic rule        : {myopic_successes:.1} successes per trial on average");
    println!("\nthe index rule keeps experimenting long enough to identify the better treatment more often.");
}

//! An R&D backlog as a branching bandit (Weiss 1988).
//!
//! ```text
//! cargo run --release --example rd_portfolio
//! ```
//!
//! A small engineering team works off a backlog of three task classes:
//!
//! * **features** (class 0) — slow to build, and every finished feature
//!   spawns follow-up work: usually a code-review task and often a test
//!   task;
//! * **reviews** (class 1) — quick, but a rejected review sends a test
//!   task back into the backlog some of the time;
//! * **tests** (class 2) — terminal work items that block the release, so
//!   they carry the highest holding cost.
//!
//! Because completing one task can *create* new tasks, the static WSEPT rule
//! of the batch model no longer applies; the right index is the
//! branching-bandit index, which charges each class for the work its entire
//! progeny will occupy the team with.  This example computes the indices,
//! simulates every static priority order of the backlog and shows that the
//! index order finishes the backlog at the smallest expected holding cost.

use stochastic_scheduling::bandits::branching::offspring::OffspringDist;
use stochastic_scheduling::bandits::branching::{estimate_order_cost, BranchingBandit};
use stochastic_scheduling::core::result::ComparisonTable;
use stochastic_scheduling::distributions::{dyn_dist, Erlang, Exponential};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // Mean effort (in days): features 3.0, reviews 0.5, tests 1.25.
    // Holding costs: tests block the release (cost 3/day), features 2/day,
    // reviews 1/day.
    let backlog = BranchingBandit::new(
        vec![
            dyn_dist(Exponential::with_mean(3.0)),
            dyn_dist(Exponential::with_mean(0.5)),
            dyn_dist(Erlang::with_mean(2, 1.25)),
        ],
        vec![2.0, 1.0, 3.0],
        vec![
            // A finished feature: always a review, and a test 60% of the time.
            OffspringDist::new(vec![(vec![0, 1, 1], 0.6), (vec![0, 1, 0], 0.4)]),
            // A review: 30% of the time it bounces a test back.
            OffspringDist::feedback(3, 2, 0.3),
            // Tests are terminal.
            OffspringDist::none(3),
        ],
    );

    println!("== R&D backlog as a branching bandit ==\n");
    println!("class 0 = feature, class 1 = review, class 2 = test\n");
    let result = backlog.indices();
    println!("| class | branching index | naive w/E[S] | expected total effort per job (days) |");
    println!("|---|---|---|---|");
    for j in 0..backlog.num_classes() {
        println!(
            "| {j} | {:.4} | {:.4} | {:.2} |",
            result.indices[j],
            backlog.holding_costs()[j] / backlog.mean_service(j),
            backlog.expected_total_work(j)
        );
    }
    println!(
        "\nindex priority order (serve first -> last): {:?}",
        result.order
    );
    println!(
        "conservation-law certificate (non-increasing marginal rates): {}\n",
        result.rates_non_increasing(1e-9)
    );

    // Compare every static priority order on a realistic sprint backlog:
    // 4 features, 2 reviews, 3 tests outstanding.
    let initial = [4usize, 2, 3];
    let orders: Vec<Vec<usize>> = vec![
        vec![0, 1, 2],
        vec![0, 2, 1],
        vec![1, 0, 2],
        vec![1, 2, 0],
        vec![2, 0, 1],
        vec![2, 1, 0],
    ];
    let mut table = ComparisonTable::new(
        "Expected total holding cost until the backlog is cleared (10 000 replications)",
        "E[total holding cost]",
    );
    for (i, order) in orders.iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(500 + i as u64);
        let (mean, ci) = estimate_order_cost(&backlog, &initial, order, 10_000, &mut rng);
        let note = if *order == result.order {
            "branching-bandit index order"
        } else {
            ""
        };
        table.add(format!("priority {order:?}"), mean, Some(ci), note);
    }
    println!("{table}");
    let best = table.best_row().expect("table has rows");
    println!(
        "best order: {} at {:.2} — the index order, as Weiss's theorem predicts.",
        best.name, best.value
    );
}

//! Restless bandits in action: scheduling repair crews over a fleet of
//! deteriorating machines (Whittle's index heuristic, experiment E10's
//! model as a worked example).
//!
//! ```text
//! cargo run --release --example machine_maintenance
//! ```
//!
//! A fleet of N machines produces revenue that falls as the machines wear;
//! m repair crews can each overhaul one machine per period.  Machines keep
//! deteriorating whether or not they are attended — a *restless* bandit, so
//! the Gittins theorem does not apply.  The example computes the Whittle
//! indices, checks indexability, compares the Whittle policy against myopic
//! and random crew assignment, and reports the LP relaxation upper bound.

use rand_chacha::ChaCha8Rng;
use stochastic_scheduling::bandits::instances::maintenance_project;
use stochastic_scheduling::bandits::restless::{
    is_indexable, relaxation_bound_identical, simulate_restless, whittle_indices, RestlessPolicy,
};

fn main() {
    use rand::SeedableRng;
    let wear_levels = 5;
    let project = maintenance_project(wear_levels, 0.35, 0.4, 0.95);

    println!("machine model: {wear_levels} wear levels, decay prob 0.35, repair cost 0.4, repair success 0.95\n");
    println!("indexable: {}", is_indexable(&project, 25));
    let indices = whittle_indices(&project);
    println!("Whittle index per wear level:");
    for (level, idx) in indices.iter().enumerate() {
        println!("  level {level}: {idx:8.3}");
    }
    println!("\n(the more worn the machine, the higher the priority of sending a crew)\n");

    let n = 30; // machines
    let m = 9; // crews
    let horizon = 60_000;
    let projects: Vec<_> = (0..n).map(|_| project.clone()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    let whittle = simulate_restless(
        &projects,
        m,
        &RestlessPolicy::WhittleIndex(vec![indices.clone(); n]),
        horizon,
        &mut rng,
    );
    let myopic = simulate_restless(&projects, m, &RestlessPolicy::Myopic, horizon, &mut rng);
    let random = simulate_restless(&projects, m, &RestlessPolicy::Random, horizon, &mut rng);
    let bound = n as f64 * relaxation_bound_identical(&project, m as f64 / n as f64);

    println!("fleet of {n} machines, {m} repair crews, average net revenue per period:");
    println!("  Whittle LP relaxation (upper bound) : {bound:8.3}");
    println!("  Whittle index policy                : {whittle:8.3}");
    println!("  myopic (largest immediate gain)     : {myopic:8.3}");
    println!("  random assignment                   : {random:8.3}");
    println!(
        "\nthe Whittle policy captures {:.1}% of the relaxation bound",
        whittle / bound * 100.0
    );
}

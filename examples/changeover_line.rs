//! A two-product packaging line with changeover (setup) times: when does the
//! cµ-rule stop being the right answer, and what replaces it?
//!
//! ```text
//! cargo run --release --example changeover_line
//! ```
//!
//! The line packages two products.  Switching the line from one product to
//! the other requires a die change that takes a fixed amount of time during
//! which nothing is produced.  Three dispatching rules are compared across a
//! range of die-change durations:
//!
//! * **cµ on every job** — the textbook rule, ignoring setups;
//! * **exhaustive** — run the current product until its queue empties, then
//!   change over (never interrupt a run);
//! * **square-root interrupt threshold** — the heavy-traffic (Reiman–Wein
//!   style) recommendation: interrupt a run of the cheap product only when
//!   the expensive product's backlog has grown past a threshold derived from
//!   the setup length.
//!
//! With negligible setups the cµ-rule wins (Cox–Smith); with substantial
//! setups it collapses, exhaustive service lets the expensive product queue
//! up, and the interrupt threshold sits between the two extremes and beats
//! both.

use stochastic_scheduling::core::job::JobClass;
use stochastic_scheduling::distributions::{dyn_dist, Deterministic, Erlang, Exponential};
use stochastic_scheduling::queueing::setups::{
    simulate_setup_policy, sqrt_rule_thresholds, SetupPolicy,
};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // Product A: frequent small orders; product B: rarer, slower, and much
    // more expensive to keep waiting.
    let products = vec![
        JobClass::new(0, 0.50, dyn_dist(Exponential::with_mean(0.9)), 1.0),
        JobClass::new(1, 0.15, dyn_dist(Erlang::with_mean(2, 1.1)), 6.0),
    ];
    let load: f64 = products.iter().map(|c| c.load()).sum();
    println!("== Two-product line with changeovers (base load rho = {load:.2}) ==\n");

    println!("| die change | cmu every job | exhaustive | sqrt threshold | thresholds [A, B] |");
    println!("|---|---|---|---|---|");
    for &setup_time in &[0.05, 0.2, 0.5, 1.0] {
        let setup: Vec<_> = (0..2)
            .map(|_| dyn_dist(Deterministic::new(setup_time)))
            .collect();
        let thresholds = sqrt_rule_thresholds(&products, &[setup_time, setup_time]);

        let run = |policy: &SetupPolicy, seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            simulate_setup_policy(&products, &setup, policy, 120_000.0, 4_000.0, &mut rng)
        };
        let myopic = run(&SetupPolicy::CmuEveryJob, 7);
        let exhaustive = run(&SetupPolicy::Exhaustive, 7);
        let threshold = run(
            &SetupPolicy::Threshold {
                thresholds: thresholds.clone(),
            },
            7,
        );

        println!(
            "| {setup_time:>5.2} | {:>10.3} | {:>8.3} | {:>10.3} | [{:.2}, {:.2}] |",
            myopic.holding_cost_rate,
            exhaustive.holding_cost_rate,
            threshold.holding_cost_rate,
            thresholds[0],
            thresholds[1],
        );
    }

    println!("\nHolding-cost rate = Σ_j c_j · E[number of product-j orders in the system].");
    println!("The cµ column deteriorates as the die change grows (capacity is eaten by setups),");
    println!("the exhaustive column lets product-B orders pile up during long product-A runs,");
    println!("and the square-root interrupt threshold sits between the two and pays a");
    println!("changeover only once enough product-B backlog has accumulated to justify it.");

    // Show how much capacity each rule spends on changeovers at a large setup.
    let setup_time = 1.0;
    let setup: Vec<_> = (0..2)
        .map(|_| dyn_dist(Deterministic::new(setup_time)))
        .collect();
    let thresholds = sqrt_rule_thresholds(&products, &[setup_time, setup_time]);
    println!("\nCapacity spent on die changes when a change takes {setup_time} time units:");
    for (name, policy) in [
        ("cmu every job", SetupPolicy::CmuEveryJob),
        ("exhaustive", SetupPolicy::Exhaustive),
        ("sqrt threshold", SetupPolicy::Threshold { thresholds }),
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let res = simulate_setup_policy(&products, &setup, &policy, 120_000.0, 4_000.0, &mut rng);
        println!(
            "  {name:<15} {:>5.1}% of time in setup ({} changeovers)",
            100.0 * res.setup_time_fraction,
            res.setups
        );
    }
}

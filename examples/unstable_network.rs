//! The stability trap in multiclass queueing networks: the Lu–Kumar
//! example, stochastic and fluid (experiments E14/E15 as a worked example).
//!
//! ```text
//! cargo run --release --example unstable_network
//! ```
//!
//! Two stations, four processing steps, every station loaded at 70% — and
//! yet the "obvious" priority rule (expedite the final step, expedite the
//! first downstream step) makes the work-in-process grow without bound.
//! The example prints the simulated queue trajectories for the bad and the
//! good priority assignment, plus the fluid-model prediction.

use rand_chacha::ChaCha8Rng;
use stochastic_scheduling::queueing::fluid::{integrate_priority_fluid, FluidNetwork};
use stochastic_scheduling::queueing::stability::{run_lu_kumar, LuKumarParams};

fn main() {
    use rand::SeedableRng;
    let params = LuKumarParams::default();
    let (rho_a, rho_b) = params.station_loads();
    println!("Lu–Kumar network: station loads rho_A = {rho_a:.2}, rho_B = {rho_b:.2}");
    println!("virtual-station load (classes 2 & 4) = {:.2}  (> 1 means the bad priority rule is unstable)\n", params.virtual_station_load());

    let horizon = 20_000.0;
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let bad = run_lu_kumar(
        &params,
        &params.bad_priority(),
        "priority to classes 2 & 4",
        horizon,
        &mut rng,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let good = run_lu_kumar(
        &params,
        &params.good_priority(),
        "priority to classes 1 & 3",
        horizon,
        &mut rng,
    );

    println!("total jobs in system over time (simulation):");
    println!(
        "{:>10} {:>18} {:>18}",
        "time", "bad priority", "good priority"
    );
    let stride = bad.result.sample_times.len() / 10;
    for i in (0..bad.result.sample_times.len()).step_by(stride.max(1)) {
        println!(
            "{:>10.0} {:>18.0} {:>18.0}",
            bad.result.sample_times[i], bad.result.trajectory[i], good.result.trajectory[i]
        );
    }
    println!(
        "\ngrowth rates: bad = {:.3} jobs/unit time, good = {:.4} jobs/unit time",
        bad.growth_rate, good.growth_rate
    );

    // Fluid prediction.
    let fluid = FluidNetwork::from_network(&params.build());
    let x0 = [1.0, 0.0, 0.0, 0.0];
    let bad_fluid = integrate_priority_fluid(&fluid, &params.bad_priority(), &x0, 200.0, 0.002, 11);
    let good_fluid =
        integrate_priority_fluid(&fluid, &params.good_priority(), &x0, 200.0, 0.002, 11);
    println!(
        "\nfluid-model totals at t = 200: bad = {:.2}, good = {:.2}",
        bad_fluid.levels.last().unwrap().iter().sum::<f64>(),
        good_fluid.levels.last().unwrap().iter().sum::<f64>()
    );
    println!("the fluid model predicts the same dichotomy the simulation shows: scheduling a network greedily can destabilise it even below nominal capacity.");
}

//! Scheduling a batch of stochastic jobs on parallel machines: SEPT vs LEPT
//! and the choice of objective (experiments E3/E4 as a worked example).
//!
//! ```text
//! cargo run --release --example parallel_machines
//! ```
//!
//! A compute cluster must run a batch of jobs whose durations are random
//! but with known means.  If you care about average turnaround (flowtime),
//! run the *short* jobs first (SEPT); if you care about finishing the whole
//! batch early (makespan), start the *long* jobs first (LEPT).  For
//! exponential durations both statements are exactly optimal; the example
//! verifies this with the exact dynamic program and then checks a
//! high-variability workload by simulation.

use stochastic_scheduling::batch::exact_exp::{
    lept_order_exp, list_policy_flowtime, list_policy_makespan, optimal_flowtime, optimal_makespan,
    sept_order_exp, ExpParallelInstance,
};
use stochastic_scheduling::batch::parallel::{evaluate_list_policy, ParallelMetric};
use stochastic_scheduling::batch::policies::{lept_order, sept_order};
use stochastic_scheduling::core::instance::BatchInstance;
use stochastic_scheduling::distributions::{dyn_dist, HyperExponential};

fn main() {
    // --- exact analysis for exponential jobs ---------------------------
    let mean_minutes = [12.0, 3.0, 8.0, 25.0, 5.0, 18.0, 9.0, 2.0];
    let rates: Vec<f64> = mean_minutes.iter().map(|m| 1.0 / m).collect();
    let instance = ExpParallelInstance::unweighted(rates);
    let machines = 3;

    println!("batch of {} exponential jobs on {machines} machines (means in minutes: {mean_minutes:?})\n", mean_minutes.len());

    let sept = sept_order_exp(&instance);
    let lept = lept_order_exp(&instance);
    println!("objective: total flowtime  E[sum C]   (average turnaround)");
    println!(
        "  SEPT    : {:.2}",
        list_policy_flowtime(&instance, &sept, machines)
    );
    println!(
        "  LEPT    : {:.2}",
        list_policy_flowtime(&instance, &lept, machines)
    );
    println!(
        "  optimal : {:.2}   (SEPT attains it — Weber 1982)\n",
        optimal_flowtime(&instance, machines)
    );

    println!("objective: makespan  E[max C]   (time until the whole batch is done)");
    println!(
        "  SEPT    : {:.2}",
        list_policy_makespan(&instance, &sept, machines)
    );
    println!(
        "  LEPT    : {:.2}",
        list_policy_makespan(&instance, &lept, machines)
    );
    println!(
        "  optimal : {:.2}   (LEPT attains it — Bruno/Downey/Frederickson 1981)\n",
        optimal_makespan(&instance, machines)
    );

    // --- a high-variability workload, by simulation ---------------------
    println!(
        "same means but heavy-tailed (hyperexponential, scv = 6) durations, 20000 replications:"
    );
    let mut builder = BatchInstance::builder();
    for &m in &mean_minutes {
        builder = builder.unweighted_job(dyn_dist(HyperExponential::with_mean_scv(m, 6.0)));
    }
    let inst = builder.build();
    let sept = sept_order(&inst);
    let lept = lept_order(&inst);
    let reps = 20_000;
    let flow_sept = evaluate_list_policy(
        &inst,
        &sept,
        machines,
        ParallelMetric::TotalFlowtime,
        reps,
        1,
    );
    let flow_lept = evaluate_list_policy(
        &inst,
        &lept,
        machines,
        ParallelMetric::TotalFlowtime,
        reps,
        1,
    );
    let mk_sept = evaluate_list_policy(&inst, &sept, machines, ParallelMetric::Makespan, reps, 2);
    let mk_lept = evaluate_list_policy(&inst, &lept, machines, ParallelMetric::Makespan, reps, 2);
    println!(
        "  flowtime: SEPT {:.1} ± {:.1}   LEPT {:.1} ± {:.1}",
        flow_sept.mean, flow_sept.ci95, flow_lept.mean, flow_lept.ci95
    );
    println!(
        "  makespan: SEPT {:.1} ± {:.1}   LEPT {:.1} ± {:.1}",
        mk_sept.mean, mk_sept.ci95, mk_lept.mean, mk_lept.ci95
    );
    println!("\nthe qualitative ranking survives outside the exponential assumptions, with a smaller margin for the makespan objective.");
}
